"""Serving-layer benchmark: a concurrent client swarm vs a serial oracle.

This is the benchmark for :mod:`repro.serving`: the fig3 view pair is
served through ``Warehouse.serve()`` while reader threads hammer the
views and the producer ingests the same churn stream the stream benchmark
uses.  Two SLO cells run — ``serve-stale`` and ``block``, both bounded at
``max_rounds=4`` over the cost-based deferral — and each must clear the
correctness gates before any number counts:

* **snapshot isolation**: every *distinct (view, version)* relation any
  reader was served is bag-identical to a serial oracle that replayed the
  same update rounds eagerly, one at a time, up to that version's as-of
  round.  Snapshot contents are immutable per version, so this verifies
  every individual read without a per-query bag comparison;
* **SLO admission**: no non-degraded read ever observed staleness beyond
  the configured bound (degraded reads are the ``serve-stale`` policy's
  explicit escape hatch, and are counted, not hidden).

``results/BENCH_serving.json`` records p50/p99 read latency, throughput,
and the maximum observed staleness per cell under ``timing`` (wall-clock
and scheduling-dependent numbers never go in the deterministic part);
``results/serving.txt`` records the deterministic verification table.

Environment knobs for CI smoke runs: ``SERVING_ROUNDS``,
``SERVING_READERS``, ``SERVING_SCALE``.
"""

import os

from repro.algebra.expressions import base_relations
from repro.api import FreshnessSLO, Warehouse, WarehouseConfig
from repro.bench.experiments import PAPER_SCALE_FACTOR
from repro.serving import run_client_swarm
from repro.workloads import queries
from repro.workloads.datagen import small_database
from repro.workloads.updategen import generate_update_stream

from benchmarks.helpers import write_json_result, write_result

SCALE = float(os.environ.get("SERVING_SCALE", "0.002"))
ROUNDS = int(os.environ.get("SERVING_ROUNDS", "10"))
READERS = int(os.environ.get("SERVING_READERS", "4"))
UPDATE_PERCENTAGE = 0.03
OVERLAP = 0.6
SLO_BOUND = 4

#: The two SLO policy cells the acceptance criteria require.
CELLS = ("serve-stale", "block")


def _make_warehouse(database):
    """The stream benchmark's setup: plan at paper scale, run small."""
    wh = Warehouse(
        WarehouseConfig.profile(
            "fast",
            serving_block_timeout_seconds=60.0,
            serving_tick_seconds=0.01,
        )
    )
    wh.load(scale=PAPER_SCALE_FACTOR)
    wh.load_data(database=database)
    wh.define_views(VIEWS)
    wh.optimize()
    wh.apply(0.0)  # materialize the views before serving starts
    return wh


VIEWS = {**queries.standalone_join_view(), **queries.standalone_agg_view()}


def _build_oracle(base, stream_rounds):
    """View contents after each serial round prefix: ``oracle[r]`` = rounds 1..r.

    Refreshes always *replace* view relations (the REPRO-L003 invariant),
    so capturing the relation references after each eager round is a
    faithful, immutable per-round snapshot.
    """
    database = base.copy()
    wh = _make_warehouse(database)
    oracle = [{name: database.view(name) for name in VIEWS}]
    with wh.stream("eager") as session:
        for deltas in stream_rounds:
            session.ingest(deltas)
            oracle.append({name: database.view(name) for name in VIEWS})
    return oracle


def _run_cell(base, stream_rounds, policy, slo):
    database = base.copy()
    wh = _make_warehouse(database)
    session = wh.serve(read_policy=policy, slo=slo)
    try:
        swarm = run_client_swarm(
            session, sorted(VIEWS), stream_rounds, readers=READERS
        )
        final_round = session.as_of_round
    finally:
        session.close()
    return swarm, final_round


def run_serving_benchmark():
    base = small_database(scale_factor=SCALE)
    involved = sorted({r for e in VIEWS.values() for r in base_relations(e)})
    stream_rounds = generate_update_stream(
        base,
        UPDATE_PERCENTAGE,
        ROUNDS,
        relations=involved,
        overlap=OVERLAP,
        seed=4242,
    )
    oracle = _build_oracle(base, stream_rounds)
    slo = FreshnessSLO(max_rounds=SLO_BOUND)
    cells = []
    for policy in CELLS:
        swarm, final_round = _run_cell(base, stream_rounds, policy, slo)
        verified = all(
            relation.same_bag(oracle[as_of][view])
            for (view, _version), (relation, as_of) in sorted(
                swarm.served_versions.items()
            )
        )
        cells.append((policy, slo, swarm, final_round, verified))
    return stream_rounds, cells


def test_serving_swarm_matches_serial_oracle(benchmark):
    """Concurrent serving is exactly serial replay, within the SLO bounds."""
    stream_rounds, cells = benchmark.pedantic(
        run_serving_benchmark, rounds=1, iterations=1
    )

    payload_cells = []
    table = [
        f"serving: concurrent client swarm over snapshot-isolated views "
        f"(scale factor {SCALE:g}, {UPDATE_PERCENTAGE:.0%} updates x "
        f"{ROUNDS} rounds, {READERS} readers)",
        f"{'policy':<12}  {'slo':<12}  {'rounds':>6}  {'verified':>8}  {'slo_respected':>13}",
        f"{'-' * 12}  {'-' * 12}  {'-' * 6}  {'-' * 8}  {'-' * 13}",
    ]
    for policy, slo, swarm, final_round, verified in cells:
        # Correctness gates before any performance claim.
        assert not swarm.errors, f"[{policy}] reader errors: {swarm.errors}"
        assert swarm.ingested_rounds == ROUNDS, (
            f"[{policy}] producer only landed {swarm.ingested_rounds} of "
            f"{ROUNDS} rounds ({swarm.shed_ingests} shed)"
        )
        assert final_round == ROUNDS, (
            f"[{policy}] daemon settled at round {final_round}, not {ROUNDS}"
        )
        assert swarm.queries > 0, f"[{policy}] the swarm never got a read in"
        assert verified, (
            f"[{policy}] a served snapshot diverged from the serial oracle"
        )
        # Admission control: non-degraded reads always satisfy the SLO.
        slo_respected = swarm.max_fresh_staleness_rounds <= SLO_BOUND
        assert slo_respected, (
            f"[{policy}] a non-degraded read observed "
            f"{swarm.max_fresh_staleness_rounds} rounds of staleness "
            f"(SLO bound: {SLO_BOUND})"
        )
        table.append(
            f"{policy:<12}  {slo.render():<12}  {ROUNDS:>6}  "
            f"{str(verified):>8}  {str(slo_respected):>13}"
        )
        payload_cells.append(
            {
                "policy": policy,
                "slo": slo.render(),
                "slo_max_rounds": SLO_BOUND,
                "ingested_rounds": swarm.ingested_rounds,
                "final_round": final_round,
                "verified": verified,
                "slo_respected": slo_respected,
                # Latency, throughput and observed staleness depend on
                # thread scheduling — timing sub-object, never diffed.
                "timing": {
                    "p50_ms": swarm.p50_ms,
                    "p99_ms": swarm.p99_ms,
                    "elapsed_seconds": swarm.elapsed_seconds,
                    "throughput_qps": swarm.throughput_qps,
                    "queries": float(swarm.queries),
                    "degraded_reads": float(swarm.degraded),
                    "rejected_reads": float(swarm.rejected),
                    "max_staleness_rounds": float(swarm.max_staleness_rounds),
                    "max_staleness_rows": float(swarm.max_staleness_rows),
                    "max_fresh_staleness_rounds": float(
                        swarm.max_fresh_staleness_rounds
                    ),
                    "distinct_versions": float(len(swarm.served_versions)),
                },
            }
        )

    table.append(
        "(latency percentiles, throughput and observed staleness: "
        "results/BENCH_serving.json)"
    )
    write_result("serving", "\n".join(table))
    write_json_result(
        "serving",
        {
            "experiment": "serving",
            "scale_factor": SCALE,
            "update_percentage": UPDATE_PERCENTAGE,
            "overlap": OVERLAP,
            "rounds": ROUNDS,
            "readers": READERS,
            "slo_max_rounds": SLO_BOUND,
            "views": sorted(VIEWS),
            "cells": payload_cells,
        },
    )
