"""Figure 4: maintaining a set of five related views.

Paper claims reproduced here (§7.2, "Maintaining a Set of Views"): "the
benefit ratio due to Greedy is again excellent at lower update percentages";
sharing across the views' maintenance expressions is what Greedy exploits.
"""

from repro.bench.experiments import run_fig4a, run_fig4b
from benchmarks.helpers import (
    BENCH_UPDATE_PERCENTAGES,
    assert_benefit_shrinks_with_updates,
    assert_costs_nondecreasing,
    assert_greedy_dominates,
    write_series,
)


def test_fig4a_view_set_without_aggregation(benchmark):
    """Figure 4(a): five join views sharing sub-expressions."""
    series = benchmark.pedantic(
        run_fig4a, kwargs={"update_percentages": BENCH_UPDATE_PERCENTAGES}, rounds=1, iterations=1
    )
    write_series("fig4a", series)
    assert_greedy_dominates(series)
    assert_costs_nondecreasing(series)
    # Sharing across 5 views should produce a clearly better ratio than the
    # stand-alone view at the lowest update percentage.
    assert_benefit_shrinks_with_updates(series, minimum_low_ratio=3.0)


def test_fig4b_view_set_with_aggregation(benchmark):
    """Figure 4(b): five aggregate views over shared joins."""
    series = benchmark.pedantic(
        run_fig4b, kwargs={"update_percentages": BENCH_UPDATE_PERCENTAGES}, rounds=1, iterations=1
    )
    write_series("fig4b", series)
    assert_greedy_dominates(series)
    assert_costs_nondecreasing(series)
    assert_benefit_shrinks_with_updates(series, minimum_low_ratio=3.0)
