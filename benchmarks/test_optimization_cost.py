"""§7.2 "Cost of Optimization".

The paper reports 31 seconds of Greedy optimization time for the 10-view
workload — small compared to the savings of up to 1000 seconds per refresh,
and a one-time cost.  We reproduce the *relationship* (optimization time is a
small fraction of the per-refresh savings), not the absolute 31 seconds: the
paper's number was measured on a 2001 UltraSparc against a larger DAG.
"""

from repro.bench.experiments import run_optimization_cost
from benchmarks.helpers import write_comparison


def test_optimization_cost_vs_savings(benchmark):
    """Greedy's optimization time is far smaller than one refresh's savings."""
    result = benchmark.pedantic(run_optimization_cost, rounds=1, iterations=1)
    write_comparison(
        "optcost",
        "optcost: Greedy optimization time for the 10-view workload (10% updates)",
        {
            "views": result.view_count,
            "optimization_seconds": result.optimization_seconds,
            "no_greedy_plan_cost": result.no_greedy_cost,
            "greedy_plan_cost": result.greedy_cost,
            "plan_cost_savings": result.savings,
        },
    )
    assert result.view_count == 10
    assert result.savings > 0, "Greedy should save plan cost on the 10-view workload"
    # Optimization is a one-time cost and must be small compared with the
    # estimated per-refresh savings (the paper: 31 s vs up to 1000 s saved).
    assert result.optimization_seconds < result.savings
    # And it should finish quickly in absolute terms on a modern machine.
    assert result.optimization_seconds < 30.0
