"""Vectorized differential refresh vs the interpreted differential path.

This is the benchmark for the differential refresh engine: the fig3/fig5
view sets are maintained through a sequence of generated update batches
twice — once with the interpreted ``differentiate`` (the PR-1 baseline,
where every ``old(expr)`` runs through the row-at-a-time interpreter with
no sharing) and once through the vectorized
:class:`~repro.engine.differential.DifferentialEngine` with its per-round
shared old-value cache.  Every view is verified against recomputation after
every refresh round on both paths before the timings count; the vectorized
engine must clear the workload-level speedup bar.
"""

import os

from repro.bench.experiments import run_refresh_comparison
from repro.bench.reporting import format_refresh_comparison, refresh_payload

from benchmarks.helpers import write_json_result, write_result

#: Required workload-level refresh speedup of the vectorized engine over the
#: interpreted-differential baseline.  Overridable so CI on noisy shared
#: runners can gate at a relaxed floor while the recorded BENCH_refresh.json
#: still tracks the real number.  At SF 0.01 (the columnar-engine PR raised
#: the default scale fivefold) the ratio compresses relative to SF 0.002:
#: the view-merge and statistics costs both paths share grow with the view
#: sizes, so the floor sits below the ~2.2–2.4x typically measured.
MINIMUM_SPEEDUP = float(os.environ.get("REFRESH_SPEEDUP_FLOOR", "1.5"))


def test_vectorized_refresh_beats_interpreted(benchmark):
    """Incremental refresh through the differential engine outruns the baseline."""
    result = benchmark.pedantic(run_refresh_comparison, rounds=1, iterations=1)
    write_result("refresh", format_refresh_comparison(result))
    write_json_result("refresh", refresh_payload(result))
    assert result.points, "no view sets were benchmarked"
    # Correctness gates before any performance claim: every view matched
    # recomputation after every refresh round, on both paths.
    assert result.all_verified, "a refreshed view diverged from recomputation"
    assert result.overall_speedup >= MINIMUM_SPEEDUP, (
        f"vectorized refresh only reached {result.overall_speedup:.2f}x over the "
        f"interpreted differential baseline (required: {MINIMUM_SPEEDUP}x)"
    )
    # Both view sets must benefit individually, not just the aggregate.
    for point in result.points:
        assert point.speedup > 1.0, (
            f"{point.workload} refreshed slower through the vectorized engine "
            f"({point.speedup:.2f}x)"
        )
