"""§7.2 "Temporary vs. Permanent Materialization".

The paper classifies every materialized result by its cheaper refresh
strategy: recomputation (→ temporary materialization) vs incremental
maintenance (→ permanent materialization).  Its headline numbers: out of
1600 results overall about 1000 preferred recomputation and 600 maintenance;
at 1–5% update rates the split was 281:306 (maintenance-leaning), while at
50–90% it flipped to 360:88 in favour of recomputation.

We reproduce the *direction* of that flip: at low update rates a clear
majority of results prefers incremental maintenance, at high update rates a
clear majority prefers recomputation.
"""

from repro.bench.experiments import run_temp_vs_perm
from benchmarks.helpers import write_comparison


def test_temp_vs_perm_flip_with_update_rate(benchmark):
    """Low update rates favour maintenance; high update rates favour recomputation."""
    result = benchmark.pedantic(
        run_temp_vs_perm,
        kwargs={"update_percentages": (0.01, 0.05, 0.50, 0.90)},
        rounds=1,
        iterations=1,
    )
    write_comparison(
        "tempperm",
        "tempperm: materialized results classified by cheaper refresh strategy",
        {
            "overall_temporary(recompute)": result.overall.temporary,
            "overall_permanent(maintain)": result.overall.permanent,
            "low_update_temporary": result.low_update.temporary,
            "low_update_permanent": result.low_update.permanent,
            "high_update_temporary": result.high_update.temporary,
            "high_update_permanent": result.high_update.permanent,
        },
    )
    assert result.overall.total > 0
    # At 1-5% update rates incremental maintenance dominates (paper: 281:306).
    assert result.low_update.permanent >= result.low_update.temporary
    # At 50-90% update rates recomputation dominates (paper: 360:88).
    assert result.high_update.temporary > result.high_update.permanent
