"""Overhead of the static-analysis passes (PR 7).

The analyzer runs on every ``define_view`` and the plan verifier on every
plan-cache insert (``cache-insert``) or planning call (``always``), so both
must be cheap relative to planning itself.  This benchmark times the three
phases separately over the full workload view pool and records the
ratios into ``results/BENCH_analysis.json``; the assertions pin the claims
the docs make — every workload passes both passes with zero diagnostics,
and the combined overhead stays a fraction of raw planning time.
"""

from time import perf_counter

from repro.analysis import analyze, verify_plan
from repro.engine.physical import PhysicalExecutor
from repro.workloads import queries
from repro.workloads.datagen import TpcdDataGenerator

from benchmarks.helpers import write_comparison


def _workload_views():
    views = {}
    for make in (
        queries.standalone_join_view,
        queries.standalone_agg_view,
        queries.view_set_plain,
        queries.view_set_aggregate,
        queries.large_view_set,
        queries.selection_variant_views,
    ):
        views.update(make())
    return views


def run_analysis_overhead():
    database = TpcdDataGenerator(scale_factor=0.0005, seed=5).populate()
    views = _workload_views()

    started = perf_counter()
    planner = PhysicalExecutor(database, feedback=False, verify_plans="off")
    plans = {}
    for name, expression in views.items():
        plans[name], _ = planner.plan(expression)
    plan_seconds = perf_counter() - started

    started = perf_counter()
    analyses = {
        name: analyze(expression, database.catalog)
        for name, expression in views.items()
    }
    analyze_seconds = perf_counter() - started

    started = perf_counter()
    verifications = {
        name: verify_plan(plan, database=database)
        for name, plan in plans.items()
    }
    verify_seconds = perf_counter() - started

    return {
        "views": len(views),
        "plan_seconds": plan_seconds,
        "analyze_seconds": analyze_seconds,
        "verify_seconds": verify_seconds,
        "overhead_fraction": (analyze_seconds + verify_seconds)
        / max(plan_seconds, 1e-9),
        "analyzer_diagnostics": sum(
            len(result.diagnostics) for result in analyses.values()
        ),
        "verifier_diagnostics": sum(len(d) for d in verifications.values()),
    }


def test_analysis_overhead(benchmark):
    """Analyzer + verifier cost a fraction of planning, with zero findings."""
    result = benchmark.pedantic(run_analysis_overhead, rounds=1, iterations=1)
    write_comparison(
        "analysis",
        "analysis: static analyzer + plan verifier overhead "
        "(full workload view pool)",
        result,
    )
    assert result["views"] >= 20
    # Conservativeness: every supported workload passes both passes clean.
    assert result["analyzer_diagnostics"] == 0
    assert result["verifier_diagnostics"] == 0
    # The passes are schema walks; planning runs a Volcano search.  Allow a
    # generous margin so the assertion survives noisy CI machines while
    # still catching an accidentally quadratic check.
    assert result["overhead_fraction"] < 2.0, result
