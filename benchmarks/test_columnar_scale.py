"""Columnar engine scale ramp: both backends, growing scale factors.

The tentpole claim of the columnar storage engine is that whole-column
kernels pull ahead of per-tuple work as relations grow.  This benchmark
executes the fig3 views (a four-relation join and an aggregation over it)
through the physical pipeline at SF 0.002 → 0.02 → 0.1 under **every
importable backend**, checks each backend's bag against a freshly
recomputed interpreter oracle, and records the timings to
``results/BENCH_columnar.json`` — the artifact ``tools/bench_compare.py``
diffs across commits.

The scale ramp is trimmed via ``COLUMNAR_SCALE_FACTORS`` (comma-separated)
on constrained runners; the numpy-vs-python gate at the largest scale is
relaxed via ``COLUMNAR_SPEEDUP_FLOOR`` like the other wall-clock gates.
"""

import os
import time
from collections import Counter

import pytest

from repro.engine import executor
from repro.engine.physical import PhysicalExecutor
from repro.storage.columns import available_backends, forced_backend
from repro.workloads import queries
from repro.workloads.datagen import small_database

from benchmarks.helpers import write_json_result

#: The ramp the tentpole claims cover (ROADMAP: "scale factors beyond
#: 0.002").  Overridable so CI smoke runs can stop at 0.02.
SCALE_FACTORS = tuple(
    float(token)
    for token in os.environ.get("COLUMNAR_SCALE_FACTORS", "0.002,0.02,0.1").split(",")
    if token.strip()
)

#: Required numpy-over-python speedup at the largest scale factor.
MINIMUM_SPEEDUP = float(os.environ.get("COLUMNAR_SPEEDUP_FLOOR", "1.2"))

REPETITIONS = 2


def _ramp_views():
    views = {}
    views.update(queries.standalone_join_view())
    views.update(queries.standalone_agg_view())
    return views


def _best_time(fn) -> float:
    best = float("inf")
    for _ in range(REPETITIONS):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_columnar_scale_ramp(benchmark):
    """Both backends stay bag-identical to recomputation as scale grows."""
    views = _ramp_views()
    backends = available_backends()
    points = []

    def run_ramp():
        for scale_factor in SCALE_FACTORS:
            per_backend = {}
            oracle_bags = None
            for backend in backends:
                with forced_backend(backend):
                    # A fresh database per backend so every relation's store
                    # is built by the backend under test.
                    database = small_database(scale_factor=scale_factor)
                    physical = PhysicalExecutor(database, strict=True)
                    results = {}
                    elapsed = 0.0
                    for name, expression in views.items():
                        physical.evaluate(expression)  # warm plan + stores
                        elapsed += _best_time(lambda e=expression: physical.evaluate(e))
                        results[name] = Counter(physical.evaluate(expression).iter_rows())
                    if oracle_bags is None:
                        # Recompute once through the row-at-a-time
                        # interpreter: the oracle every backend must match.
                        oracle_bags = {
                            name: Counter(
                                executor.evaluate(expression, database).iter_rows()
                            )
                            for name, expression in views.items()
                        }
                    verified = all(
                        results[name] == oracle_bags[name] for name in views
                    )
                    per_backend[backend] = {
                        "verified": verified,
                        "timing": {"physical_seconds": elapsed},
                    }
            point = {
                "scale_factor": scale_factor,
                "views": len(views),
                "backends": per_backend,
            }
            if "numpy" in per_backend and "python" in per_backend:
                point["timing"] = {
                    "numpy_over_python": (
                        per_backend["python"]["timing"]["physical_seconds"]
                        / max(per_backend["numpy"]["timing"]["physical_seconds"], 1e-9)
                    )
                }
            points.append(point)

    benchmark.pedantic(run_ramp, rounds=1, iterations=1)
    payload = {
        "experiment": "columnar_scale",
        "backends": list(backends),
        "points": points,
    }
    write_json_result("columnar", payload)

    for point in points:
        for backend, entry in point["backends"].items():
            assert entry["verified"], (
                f"{backend} backend diverged from recomputation at "
                f"SF {point['scale_factor']}"
            )
    if "numpy" not in backends:
        pytest.skip("numpy backend unavailable: ramp recorded for python only")
    largest = points[-1]
    ratio = largest["timing"]["numpy_over_python"]
    assert ratio >= MINIMUM_SPEEDUP, (
        f"numpy backend only reached {ratio:.2f}x over the python backend at "
        f"SF {largest['scale_factor']} (required: {MINIMUM_SPEEDUP}x)"
    )
