"""Stream refresh policies: coalesced deferred refresh vs eager per-update.

This is the benchmark for :mod:`repro.stream`: the fig3 view pair is fed the
same sequence of update rounds — with deliberate insert/delete overlap
between rounds, the churn pattern where coalescing annihilation pays — under
two ``Warehouse.stream()`` policies.  *Eager* refreshes after every ingested
round (the pre-stream behavior); *coalesce* buffers rounds, annihilates
insert-then-delete pairs, and flushes once.  Every view must end bag-identical
between the two policies (and match recomputation) before any number counts;
the coalesced policy must propagate strictly fewer rows and clear the
wall-clock speedup bar.
"""

import os

from repro.bench.experiments import run_stream_comparison
from repro.bench.reporting import format_stream_comparison, stream_payload

from benchmarks.helpers import write_json_result, write_result

#: Required wall-clock refresh speedup of the coalesced/deferred policy over
#: eager per-round refresh.  Overridable so CI on noisy shared runners can
#: gate at a relaxed floor while BENCH_stream.json records the real number.
MINIMUM_SPEEDUP = float(os.environ.get("STREAM_SPEEDUP_FLOOR", "1.5"))


def test_coalesced_stream_beats_eager_refresh(benchmark):
    """Deferral + coalescing propagate fewer rows and refresh faster."""
    result = benchmark.pedantic(run_stream_comparison, rounds=1, iterations=1)
    write_result("stream", format_stream_comparison(result))
    write_json_result("stream", stream_payload(result))

    eager = result.outcomes["eager"]
    coalesced = result.outcomes["coalesce"]

    # Correctness gates before any performance claim: both policies end with
    # every view bag-identical to recomputation, and to each other.
    assert result.all_verified, "a stream-refreshed view diverged from recomputation"
    assert result.views_identical, (
        "coalesced deferred refresh produced different view contents than "
        "eager per-round refresh"
    )

    # The stream actually exercised the interesting machinery.
    assert eager.flushes == result.rounds, "eager policy must refresh every round"
    assert coalesced.flushes < eager.flushes, "coalescing never deferred a refresh"
    assert coalesced.annihilated_rows > 0, (
        "the overlapping stream produced no insert/delete annihilation"
    )

    # Fewer rows propagated (deterministic) ...
    assert coalesced.rows_propagated < eager.rows_propagated, (
        f"coalesced policy propagated {coalesced.rows_propagated} rows, "
        f"eager only {eager.rows_propagated}"
    )
    # ... and less wall-clock spent refreshing.
    assert result.speedup >= MINIMUM_SPEEDUP, (
        f"coalesced/deferred refresh only reached {result.speedup:.2f}x over "
        f"eager per-update refresh (required: {MINIMUM_SPEEDUP}x)"
    )
