"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's figures/tables, asserts the
qualitative claims the paper makes about it, and writes the regenerated
series to ``results/<experiment>.txt`` so ``EXPERIMENTS.md`` can point at
concrete numbers.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Sequence

from repro.bench.reporting import (
    comparison_payload,
    format_comparison,
    format_series,
    render_json,
    series_payload,
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "results")

#: Update percentages used by the benchmark sweeps (a subset of the paper's
#: 1%–80% x axis, kept small so the whole suite runs in seconds).
BENCH_UPDATE_PERCENTAGES: Sequence[float] = (0.01, 0.05, 0.10, 0.20, 0.40, 0.80)


def write_result(name: str, text: str) -> str:
    """Persist a regenerated table under ``results/`` and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path


def write_json_result(name: str, payload: Mapping[str, Any]) -> str:
    """Persist a machine-readable ``BENCH_<name>.json`` under ``results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_json(payload) + "\n")
    return path


def write_series(name: str, series) -> None:
    """Persist one figure sweep as both a text table and a JSON payload."""
    write_result(name, format_series(series))
    write_json_result(name, series_payload(series))


def write_comparison(name: str, label: str, values: Mapping[str, Any]) -> None:
    """Persist one summary block as both text and JSON."""
    write_result(name, format_comparison(label, values))
    write_json_result(name, comparison_payload(label, values))


def assert_greedy_dominates(series, tolerance: float = 1.001) -> None:
    """Greedy should never be (meaningfully) worse than NoGreedy."""
    for point in series.points:
        assert point.greedy_cost <= point.no_greedy_cost * tolerance, (
            f"Greedy ({point.greedy_cost:.2f}) worse than NoGreedy "
            f"({point.no_greedy_cost:.2f}) at {point.update_percentage:.0%}"
        )


def assert_benefit_shrinks_with_updates(series, minimum_low_ratio: float) -> None:
    """The benefit ratio should peak at the lowest update percentage."""
    ratios = series.ratios()
    assert ratios[0] >= minimum_low_ratio, (
        f"expected a benefit ratio of at least {minimum_low_ratio} at the lowest "
        f"update percentage, got {ratios[0]:.2f}"
    )
    assert ratios[0] >= ratios[-1] - 1e-9, "benefit ratio should not grow with update percentage"


def assert_costs_nondecreasing(series, tolerance: float = 1.05) -> None:
    """Plan costs should (weakly) grow with the update percentage."""
    for earlier, later in zip(series.points, series.points[1:]):
        assert later.no_greedy_cost >= earlier.no_greedy_cost / tolerance
        assert later.greedy_cost >= earlier.greedy_cost / tolerance
