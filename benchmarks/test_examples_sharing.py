"""Sanity benches for the sharing examples of §3.3.

Example 3.1: two queries whose locally optimal plans share nothing, but a
globally optimal choice shares R ⋈ S.  Example 3.2: a single view over four
relations whose maintenance expressions share sub-expressions across the
per-relation differentials.
"""

from repro.bench.experiments import run_sharing_examples
from benchmarks.helpers import write_comparison


def test_sharing_examples(benchmark):
    """Both §3.3 examples produce cost reductions from sharing."""
    result = benchmark.pedantic(run_sharing_examples, rounds=1, iterations=1)
    write_comparison(
        "examples_sharing",
        "ex3.1/ex3.2: sharing illustrations",
        {
            "ex3_1_unshared_cost": result.example_3_1.unshared_cost,
            "ex3_1_optimized_cost": result.example_3_1.optimized_cost,
            "ex3_1_materialized": ", ".join(result.example_3_1.materialized_keys) or "(none)",
            "ex3_2_no_greedy": result.example_3_2_no_greedy,
            "ex3_2_greedy": result.example_3_2_greedy,
        },
    )
    # Example 3.1: multi-query optimization must not hurt, and the shared
    # sub-expression should be found when it pays off.
    assert result.example_3_1.optimized_cost <= result.example_3_1.unshared_cost * 1.001
    # Example 3.2: the maintenance-time greedy beats the baseline.
    assert result.example_3_2_greedy <= result.example_3_2_no_greedy * 1.001
