"""Estimation quality: histograms + runtime feedback vs the System-R baseline.

This is the benchmark for the unified :class:`CardinalityEstimator`: the
fig3/fig5 view sets (enriched with range selections over the skewed
``l_extendedprice`` column) execute under three estimator configurations —
System-R uniformity only, histograms, and histograms plus the runtime
cardinality feedback loop — and every executed plan step's estimated output
cardinality is scored against the actual one.

The gates mirror the PR's acceptance criteria: the histogram+feedback
estimator must achieve a median per-operator q-error no worse than the
uniformity baseline on both workloads (and strictly better where the
baseline actually errs), an absolute q-error ceiling holds on the fig3
workload so estimate-quality regressions fail CI, and end-to-end runtimes
must not degrade relative to the baseline estimator's plans.
"""

import os

from repro.bench.estimation import run_estimation_quality
from repro.bench.reporting import estimation_payload, format_estimation

from benchmarks.helpers import write_json_result, write_result

#: Absolute ceiling for the histogram+feedback median q-error on the fig3
#: workload.  Overridable for exotic environments; the recorded
#: BENCH_estimation.json still tracks the real number.
QERROR_CEILING = float(os.environ.get("ESTIMATION_QERROR_CEILING", "1.5"))

#: Allowed runtime slack of histogram-estimated plans over baseline plans
#: (generous: shared CI runners are noisy and the workloads run in ~1s).
RUNTIME_SLACK = float(os.environ.get("ESTIMATION_RUNTIME_SLACK", "1.75"))


def test_histogram_feedback_beats_uniformity(benchmark):
    """Histogram + feedback estimation dominates the uniformity baseline."""
    result = benchmark.pedantic(run_estimation_quality, rounds=1, iterations=1)
    write_result("estimation", format_estimation(result))
    write_json_result("estimation", estimation_payload(result))

    for workload in ("fig3", "fig5"):
        uniform = result.workload(workload).modes["uniform"]
        feedback = result.workload(workload).modes["histogram_feedback"]
        assert feedback.median_qerror <= uniform.median_qerror + 1e-9, (
            f"{workload}: histogram+feedback median q-error "
            f"{feedback.median_qerror:.4f} worse than the uniformity baseline's "
            f"{uniform.median_qerror:.4f}"
        )
        # The mean exposes the tail the median can hide: it must strictly
        # improve (the baseline demonstrably errs on the skewed selections).
        assert feedback.mean_qerror < uniform.mean_qerror, (
            f"{workload}: histogram+feedback mean q-error {feedback.mean_qerror:.4f} "
            f"did not improve on the baseline's {uniform.mean_qerror:.4f}"
        )
        assert feedback.max_qerror <= uniform.max_qerror + 1e-9, (
            f"{workload}: worst-case q-error regressed "
            f"({feedback.max_qerror:.4f} > {uniform.max_qerror:.4f})"
        )
        # Plan-quality guard: better estimates must not buy slower plans.
        assert feedback.runtime_seconds <= uniform.runtime_seconds * RUNTIME_SLACK, (
            f"{workload}: histogram+feedback execution took "
            f"{feedback.runtime_seconds * 1000:.1f}ms vs the baseline's "
            f"{uniform.runtime_seconds * 1000:.1f}ms"
        )

    # CI regression gate: the fig3 median q-error must stay under the ceiling.
    fig3 = result.median_qerror("fig3", "histogram_feedback")
    assert fig3 <= QERROR_CEILING, (
        f"fig3 median q-error {fig3:.4f} exceeds the ceiling {QERROR_CEILING}"
    )
