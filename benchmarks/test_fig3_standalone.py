"""Figure 3: maintaining stand-alone views (with and without aggregation).

Paper claims reproduced here (§7.2, "Maintaining Individual Views"):
"significant benefits are to be had, especially at low update percentages,
but there are benefits even at relatively high update percentages."
"""

from repro.bench.experiments import run_fig3a, run_fig3b
from benchmarks.helpers import (
    BENCH_UPDATE_PERCENTAGES,
    assert_benefit_shrinks_with_updates,
    assert_costs_nondecreasing,
    assert_greedy_dominates,
    write_series,
)


def test_fig3a_standalone_join_view(benchmark):
    """Figure 3(a): join of 4 relations, no aggregation."""
    series = benchmark.pedantic(
        run_fig3a, kwargs={"update_percentages": BENCH_UPDATE_PERCENTAGES}, rounds=1, iterations=1
    )
    write_series("fig3a", series)
    assert_greedy_dominates(series)
    assert_costs_nondecreasing(series)
    # Greedy wins clearly at the 1% update point.
    assert_benefit_shrinks_with_updates(series, minimum_low_ratio=2.0)


def test_fig3b_standalone_aggregate_view(benchmark):
    """Figure 3(b): aggregation over the same join."""
    series = benchmark.pedantic(
        run_fig3b, kwargs={"update_percentages": BENCH_UPDATE_PERCENTAGES}, rounds=1, iterations=1
    )
    write_series("fig3b", series)
    assert_greedy_dominates(series)
    assert_costs_nondecreasing(series)
    assert_benefit_shrinks_with_updates(series, minimum_low_ratio=1.5)
