"""Physical execution vs the row-at-a-time interpreter.

This is the benchmark for the physical execution subsystem: the fig3/fig5
query sets run over a generated TPC-D database both through the logical
interpreter (``engine.executor.evaluate``) and through the compiled,
vectorized physical pipeline (``engine.physical``), with bag-equality
checked per view before timing.  The physical path must be measurably
faster on the workload total — the plans the optimizer picks, executed on
the columnar batch kernels, beat per-tuple interpretation.
"""

import os

from repro.bench.experiments import run_physical_vs_interpreter
from repro.bench.reporting import execution_payload, format_execution_comparison

from benchmarks.helpers import write_json_result, write_result

#: Required workload-level speedup of the physical path.  Overridable so CI
#: on noisy shared runners can gate at a relaxed floor while the recorded
#: BENCH_physical_exec.json still tracks the real number.
MINIMUM_SPEEDUP = float(os.environ.get("PHYSICAL_SPEEDUP_FLOOR", "1.5"))


def test_physical_beats_interpreter(benchmark):
    """Vectorized physical plans outrun the interpreter on fig3/fig5 queries."""
    result = benchmark.pedantic(run_physical_vs_interpreter, rounds=1, iterations=1)
    write_result("physical_exec", format_execution_comparison(result))
    write_json_result("physical_exec", execution_payload(result))
    assert result.points, "no views were benchmarked"
    # Every view must have produced the interpreter's exact bag (checked by
    # the driver) and the workload total must clear the speedup bar.
    assert result.overall_speedup >= MINIMUM_SPEEDUP, (
        f"physical execution only reached {result.overall_speedup:.2f}x over the "
        f"interpreter (required: {MINIMUM_SPEEDUP}x)"
    )
    # The heavyweight joins individually benefit as well: at least half the
    # views must be faster physically.
    faster = sum(1 for point in result.points if point.speedup > 1.0)
    assert faster >= len(result.points) / 2
