"""Figure 5: maintaining a large set of ten views, with and without indexes.

Paper claims reproduced here (§7.2): with no indexes initially present, "all
required indices got chosen for materialization", so the cost of the Greedy
plans is not significantly affected by whether indexes pre-exist, while the
cost of the plans without the optimization rises.
"""

from repro.bench.experiments import run_fig5a, run_fig5b
from benchmarks.helpers import (
    assert_benefit_shrinks_with_updates,
    assert_greedy_dominates,
    write_series,
)

#: A smaller sweep: the 10-view workload is the most expensive to optimize.
FIG5_PERCENTAGES = (0.01, 0.10, 0.40, 0.80)


def test_fig5a_with_predefined_indexes(benchmark):
    """Figure 5(a): ten views with primary-key indexes predefined."""
    series = benchmark.pedantic(
        run_fig5a, kwargs={"update_percentages": FIG5_PERCENTAGES}, rounds=1, iterations=1
    )
    write_series("fig5a", series)
    assert_greedy_dominates(series)
    assert_benefit_shrinks_with_updates(series, minimum_low_ratio=4.0)


def test_fig5b_without_predefined_indexes(benchmark):
    """Figure 5(b): the same ten views with no initial indexes."""
    series = benchmark.pedantic(
        run_fig5b, kwargs={"update_percentages": FIG5_PERCENTAGES}, rounds=1, iterations=1
    )
    write_series("fig5b", series)
    assert_greedy_dominates(series)
    assert_benefit_shrinks_with_updates(series, minimum_low_ratio=4.0)
    # Indexes must have been selected by Greedy in every swept configuration.
    assert all(point.greedy_indexes > 0 for point in series.points)


def test_fig5_greedy_insensitive_to_initial_indexes(benchmark):
    """Greedy's plan cost barely depends on whether indexes pre-exist (§7.2)."""

    def both():
        return (
            run_fig5a(update_percentages=(0.01, 0.10)),
            run_fig5b(update_percentages=(0.01, 0.10)),
        )

    with_idx, without_idx = benchmark.pedantic(both, rounds=1, iterations=1)
    for point_a, point_b in zip(with_idx.points, without_idx.points):
        # Greedy costs within 25% of each other whether or not indexes existed.
        assert point_b.greedy_cost <= point_a.greedy_cost * 1.25
        # NoGreedy without indexes is at least as expensive as with them.
        assert point_b.no_greedy_cost >= point_a.no_greedy_cost * 0.95
