"""§7.2 "Effect of Buffer Size".

With a 1000-block buffer (instead of 8000), the paper found that plan costs
with and without Greedy both went up, that the increase was larger for
recomputation plans, and that the benefit ratio at small update percentages
moved further in favour of the Greedy algorithm.
"""

from repro.bench.experiments import run_buffer_size_effect
from repro.bench.reporting import format_series, series_payload

from benchmarks.helpers import write_json_result, write_result


def test_small_buffer_increases_costs_and_benefit_ratio(benchmark):
    """Shrinking the buffer raises costs and strengthens Greedy's advantage."""
    result = benchmark.pedantic(
        run_buffer_size_effect,
        kwargs={"update_percentages": (0.01, 0.10, 0.40)},
        rounds=1,
        iterations=1,
    )
    write_result(
        "bufsize",
        format_series(result.large_buffer) + "\n\n" + format_series(result.small_buffer),
    )
    write_json_result(
        "bufsize",
        {
            "large_buffer": series_payload(result.large_buffer),
            "small_buffer": series_payload(result.small_buffer),
        },
    )
    large_ratio, small_ratio = result.ratio_at_lowest_update()
    # Costs go up with the smaller buffer, for both algorithms (paper's first
    # observation for this experiment).
    for large_point, small_point in zip(result.large_buffer.points, result.small_buffer.points):
        assert small_point.no_greedy_cost >= large_point.no_greedy_cost * 0.95
        assert small_point.greedy_cost >= large_point.greedy_cost * 0.95
    # Greedy still wins clearly at small update percentages with the small
    # buffer.  (Deviation from the paper: in our cost model the benefit
    # *ratio* shrinks slightly with the smaller buffer instead of growing,
    # because index probes into relations that no longer fit in memory get
    # charged extra I/O on the incremental plans — see EXPERIMENTS.md.)
    assert small_ratio > 3.0
    assert large_ratio > 3.0
