"""Sharded execution scale ramp: worker counts × scale factors, with the
capacity model's predicted curve recorded next to the measured one.

The tentpole claim of the parallel layer is that sharded execution of the
fig3/fig5-style views tracks the serial engine exactly while wall-clock
follows the capacity model ``T(n) = T_serial/min(n, cores) + overheads``.
This benchmark evaluates a small view pool serially (the oracle and the
``workers=1`` baseline), then through :class:`repro.parallel.ShardPool`
at growing worker counts and scale factors, verifies every merged result
bag-identical to serial execution, and records measured vs. predicted
seconds per cell to ``results/BENCH_parallel.json`` — the artifact
``tools/bench_compare.py`` diffs across commits.

Two gates, both honest about the host:

* the **speedup gate** (``PARALLEL_SPEEDUP_FLOOR``, default 2x at the
  largest scale with 4 workers) only fires when the host actually has
  4+ effective cores — on a single-core runner the model itself predicts
  a flat curve, so the payload records the skip instead;
* the **fit gate** (``PARALLEL_FIT_TOLERANCE``, default 30%) compares the
  capacity model's prediction against the measurement at the largest
  scale factor on every host, since the model takes the core count as an
  input and should be right about flat curves too.

``PARALLEL_SCALE_FACTORS`` and ``PARALLEL_WORKER_COUNTS`` trim the grid on
constrained runners, like the other ``*_SCALE_FACTORS`` knobs.
"""

import gc
import os
import statistics
import time

import pytest

from repro.engine.physical import PhysicalExecutor
from repro.parallel import CapacityModel, ShardPool, ShardSpec, effective_cores, fit_error
from repro.storage.relation import Relation
from repro.workloads import queries
from repro.workloads.datagen import small_database

from benchmarks.helpers import write_json_result, write_result

SCALE_FACTORS = tuple(
    float(token)
    for token in os.environ.get("PARALLEL_SCALE_FACTORS", "0.002,0.02,0.1").split(",")
    if token.strip()
)

WORKER_COUNTS = tuple(
    int(token)
    for token in os.environ.get("PARALLEL_WORKER_COUNTS", "1,2,4,8").split(",")
    if token.strip()
)

#: Required serial-over-parallel speedup at the largest scale factor with
#: four workers — only meaningful (and only asserted) on a 4+ core host.
MINIMUM_SPEEDUP = float(os.environ.get("PARALLEL_SPEEDUP_FLOOR", "2.0"))
SPEEDUP_WORKERS = 4

#: Maximum median relative error of the capacity model's predictions
#: against the measurements, over every (scale, workers) cell.
FIT_TOLERANCE = float(os.environ.get("PARALLEL_FIT_TOLERANCE", "0.30"))

#: Rows of lineitem echoed through the pipe during calibration.
CALIBRATION_ROWS = 2048

REPETITIONS = 3


def _ramp_views():
    views = {}
    views.update(queries.standalone_join_view())
    views.update(queries.standalone_agg_view())
    views["v02_order_nations"] = queries.large_view_set()["v02_order_nations"]
    return views


def _best_time(fn) -> float:
    best = float("inf")
    for _ in range(REPETITIONS):
        # The oracle bags built between cells leave gen-2 garbage behind;
        # collect it now so a GC pause doesn't land inside the timed region.
        gc.collect()
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _bag_digest(relation) -> tuple:
    """Order-independent bag digest: (row count, 64-bit sum of row hashes).

    Holding full bags of every serial result would keep millions of tuples
    live in the parent for the whole ramp, and every gen-2 GC pass — the
    parent's and the forked workers', through their inherited heap — would
    pay to scan them.  A hash-sum digest is multiplicity-sensitive and
    order-independent; the exact bag-equivalence proofs live in
    ``tests/test_parallel_shard.py`` / ``tests/test_parallel_pool.py``.
    """
    total = 0
    count = 0
    for row in relation.iter_rows():
        total = (total + hash(row)) & 0xFFFFFFFFFFFFFFFF
        count += 1
    return count, total


def _calibration_sample(database) -> Relation:
    lineitem = database.table("lineitem")
    rows = list(lineitem.iter_rows())[:CALIBRATION_ROWS]
    return Relation(lineitem.schema, rows, name="lineitem")


def test_parallel_scale_ramp(benchmark):
    """Sharded execution stays bag-identical to serial as workers grow."""
    views = _ramp_views()
    items = list(views.items())
    cores = effective_cores()
    points = []

    def run_ramp():
        for scale_factor in SCALE_FACTORS:
            database = small_database(scale_factor=scale_factor)
            physical = PhysicalExecutor(database, strict=True)

            def run_serial():
                for expression in views.values():
                    physical.evaluate(expression)

            run_serial()  # warm plans and stores
            serial_seconds = _best_time(run_serial)
            # The serial engine is the oracle (its own equivalence to the
            # row-at-a-time interpreter is the columnar benchmark's gate).
            serial_digests = {
                name: _bag_digest(physical.evaluate(expression))
                for name, expression in views.items()
            }

            sample = _calibration_sample(database)
            point = {
                "scale_factor": scale_factor,
                "views": len(views),
                "rows": {
                    name: len(database.table(name)) for name in ("orders", "lineitem")
                },
                "timing": {"serial_seconds": serial_seconds},
                "workers": [],
            }
            shipped_rows = None
            for workers in WORKER_COUNTS:
                spec = ShardSpec.for_database(database, workers=workers)
                with ShardPool(database, spec) as pool:
                    if shipped_rows is None:
                        # Rows crossing the pipe per evaluation round: the
                        # worker-side expression's full output (partitioning
                        # is exact, so the shard outputs sum to it).
                        shipped_rows = sum(
                            len(physical.evaluate(pool.plan(e).shard_expression))
                            for e in views.values()
                            if pool.plan(e).parallel
                        )
                    results = pool.evaluate_many(items)  # warm workers + plans
                    parallel_seconds = _best_time(lambda: pool.evaluate_many(items))
                    verified = all(
                        results[name] is not None
                        and _bag_digest(results[name]) == serial_digests[name]
                        for name in views
                    )
                    del results
                    model = CapacityModel.calibrate(pool, sample)
                    predicted = model.predict_seconds(
                        serial_seconds, workers, merged_rows=shipped_rows
                    )
                    point["workers"].append(
                        {
                            "workers": workers,
                            "mode": pool.mode,
                            "verified": verified,
                            "merged_rows": shipped_rows,
                            "fit_error": fit_error(predicted, parallel_seconds),
                            "capacity": model.parameters.as_dict(),
                            "timing": {
                                "parallel_seconds": parallel_seconds,
                                "predicted_seconds": predicted,
                                "speedup": serial_seconds
                                / max(parallel_seconds, 1e-9),
                            },
                        }
                    )
            points.append(point)

    benchmark.pedantic(run_ramp, rounds=1, iterations=1)

    payload = {
        "experiment": "parallel_scale",
        "effective_cores": cores,
        "worker_counts": list(WORKER_COUNTS),
        "points": points,
    }
    largest = points[-1]
    gate_cell = next(
        (c for c in largest["workers"] if c["workers"] == SPEEDUP_WORKERS), None
    )
    if cores >= SPEEDUP_WORKERS and gate_cell is not None:
        payload["speedup_gate"] = {
            "floor": MINIMUM_SPEEDUP,
            "measured": gate_cell["timing"]["speedup"],
        }
    else:
        payload["speedup_gate"] = {
            "skipped": f"host has {cores} effective core(s); "
            f"the gate needs {SPEEDUP_WORKERS}",
        }
    write_json_result("parallel", payload)
    write_result("parallel_scale", _render_curves(payload))

    for point in points:
        for cell in point["workers"]:
            assert cell["verified"], (
                f"workers={cell['workers']} diverged from serial execution at "
                f"SF {point['scale_factor']}"
            )
    fits = [cell["fit_error"] for point in points for cell in point["workers"]]
    median_fit = statistics.median(fits)
    assert median_fit <= FIT_TOLERANCE, (
        f"capacity model off by {median_fit:.0%} (median over "
        f"{len(fits)} grid cells; tolerance: {FIT_TOLERANCE:.0%})"
    )
    if "skipped" in payload["speedup_gate"]:
        pytest.skip(payload["speedup_gate"]["skipped"] + "; curves recorded")
    measured = payload["speedup_gate"]["measured"]
    assert measured >= MINIMUM_SPEEDUP, (
        f"only {measured:.2f}x over serial at SF {largest['scale_factor']} with "
        f"{SPEEDUP_WORKERS} workers (required: {MINIMUM_SPEEDUP}x)"
    )


def _render_curves(payload) -> str:
    """Human-readable measured-vs-predicted table for ``results/``."""
    lines = [
        f"parallel scale ramp ({payload['effective_cores']} effective cores)",
        f"{'SF':>6}  {'workers':>7}  {'serial_s':>9}  {'parallel_s':>10}  "
        f"{'predicted_s':>11}  {'speedup':>7}  {'fit':>5}",
    ]
    for point in payload["points"]:
        serial = point["timing"]["serial_seconds"]
        for cell in point["workers"]:
            timing = cell["timing"]
            lines.append(
                f"{point['scale_factor']:6g}  {cell['workers']:7d}  {serial:9.4f}  "
                f"{timing['parallel_seconds']:10.4f}  "
                f"{timing['predicted_seconds']:11.4f}  "
                f"{timing['speedup']:6.2f}x  {cell['fit_error']:4.0%}"
            )
    gate = payload["speedup_gate"]
    if "skipped" in gate:
        lines.append(f"speedup gate: skipped ({gate['skipped']})")
    else:
        lines.append(
            f"speedup gate: {gate['measured']:.2f}x measured vs {gate['floor']:.2f}x floor"
        )
    return "\n".join(lines)
