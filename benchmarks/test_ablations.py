"""Ablations of the design choices the paper calls out.

Three switches are ablated on the Figure 4(a) workload at 5% updates:

* the **monotonicity optimization** of the greedy loop (§6.2) — should cut
  the number of benefit evaluations without changing the chosen
  configuration's quality;
* **index selection** (§4.3) — folding index choice into the greedy
  algorithm is a large part of the benefit;
* **join-order expansion** of the DAG (§4.1) — without associativity
  alternatives the optimizer can only use the plans as written, which can
  only be worse (or equal).
"""

from repro.maintenance.optimizer import ViewMaintenanceOptimizer
from repro.maintenance.update_spec import UpdateSpec
from repro.workloads import queries, tpcd

from benchmarks.helpers import write_comparison


def _run(include_indexes=True, use_monotonicity=True, expand_joins=True):
    catalog = tpcd.tpcd_catalog(scale_factor=0.1)
    optimizer = ViewMaintenanceOptimizer(
        catalog,
        include_index_candidates=include_indexes,
        use_monotonicity=use_monotonicity,
        expand_joins=expand_joins,
    )
    return optimizer.optimize(queries.view_set_plain(), UpdateSpec.uniform(0.05))


def test_ablation_monotonicity_optimization(benchmark):
    """Lazy benefit re-evaluation finds the same-quality answer with less work."""

    def both():
        return _run(use_monotonicity=True), _run(use_monotonicity=False)

    lazy, eager = benchmark.pedantic(both, rounds=1, iterations=1)
    write_comparison(
        "ablation_monotonicity",
        "ablation: monotonicity optimization (fig4a workload, 5% updates)",
        {
            "lazy_total_cost": lazy.total_cost,
            "eager_total_cost": eager.total_cost,
            "lazy_benefit_evaluations": lazy.selection.benefit_evaluations,
            "eager_benefit_evaluations": eager.selection.benefit_evaluations,
            "lazy_seconds": lazy.optimization_seconds,
            "eager_seconds": eager.optimization_seconds,
        },
    )
    assert lazy.total_cost <= eager.total_cost * 1.05
    assert lazy.selection.benefit_evaluations <= eager.selection.benefit_evaluations


def test_ablation_index_selection(benchmark):
    """Disabling index candidates makes the chosen configuration clearly worse."""

    def both():
        return _run(include_indexes=True), _run(include_indexes=False)

    with_indexes, without_indexes = benchmark.pedantic(both, rounds=1, iterations=1)
    write_comparison(
        "ablation_indexes",
        "ablation: index selection (fig4a workload, 5% updates)",
        {
            "with_index_candidates": with_indexes.total_cost,
            "without_index_candidates": without_indexes.total_cost,
        },
    )
    assert with_indexes.total_cost < without_indexes.total_cost


def test_ablation_join_expansion(benchmark):
    """Without associativity expansion the optimizer cannot do better."""

    def both():
        return _run(expand_joins=True), _run(expand_joins=False)

    expanded, literal = benchmark.pedantic(both, rounds=1, iterations=1)
    write_comparison(
        "ablation_expansion",
        "ablation: join-order expansion (fig4a workload, 5% updates)",
        {
            "expanded_dag_cost": expanded.total_cost,
            "literal_plan_cost": literal.total_cost,
        },
    )
    assert expanded.total_cost <= literal.total_cost * 1.001
