"""Documentation checks: executable README blocks + intra-doc link integrity.

Run as ``python tools/check_docs.py`` (the CI docs job does).  Two checks:

1. **README code blocks execute.**  Every fenced ```python block in
   ``README.md`` is executed verbatim in a fresh namespace, so the
   documented quickstart can never rot relative to the public API.
2. **Intra-doc links resolve.**  Every relative markdown link in the
   checked documents must point at an existing file (and, for ``#anchor``
   fragments, at an existing heading of the target document).

The functions are import-friendly so ``tests/test_docs.py`` can run the
same checks inside the tier-1 suite without a subprocess.
"""

from __future__ import annotations

import io
import os
import re
import sys
from contextlib import redirect_stdout
from typing import List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Documents whose code blocks and links are checked.
CHECKED_DOCUMENTS = ("README.md", "ARCHITECTURE.md", "docs/index.md")

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_ANY_FENCE = re.compile(r"```.*?```", re.DOTALL)
# Inline markdown links [text](target); images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _without_fences(text: str) -> str:
    """The document with fenced code blocks blanked out.

    Link and heading scans must not read code: a Python comment line looks
    like a markdown heading (phantom anchors keep dead links green) and
    ``[x](y)``-shaped code text looks like a link.
    """
    return _ANY_FENCE.sub("", text)


def _read(path: str) -> str:
    with open(os.path.join(REPO_ROOT, path), "r", encoding="utf-8") as handle:
        return handle.read()


def python_blocks(document: str = "README.md") -> List[str]:
    """The fenced ```python blocks of a document, in order."""
    return [block for block in _FENCE.findall(_read(document))]


def run_python_blocks(document: str = "README.md") -> int:
    """Execute every python block of ``document``; returns how many ran.

    Each block runs in its own namespace with stdout captured (the blocks
    print their results for human readers; the check only cares that they
    execute).  Any exception propagates, naming the block.
    """
    if os.path.join(REPO_ROOT, "src") not in sys.path:
        sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    blocks = python_blocks(document)
    for number, block in enumerate(blocks, start=1):
        try:
            with redirect_stdout(io.StringIO()):
                exec(compile(block, f"<{document} block {number}>", "exec"), {})
        except Exception as exc:  # pragma: no cover - the failure path
            raise AssertionError(
                f"{document} python block {number} failed to execute: {exc!r}\n"
                f"--- block ---\n{block}"
            ) from exc
    return len(blocks)


def _github_anchor(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def check_links(documents: Tuple[str, ...] = CHECKED_DOCUMENTS) -> List[str]:
    """Broken relative links across ``documents`` (empty list = all good)."""
    broken: List[str] = []
    for document in documents:
        base = os.path.dirname(os.path.join(REPO_ROOT, document))
        for target in _LINK.findall(_without_fences(_read(document))):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, fragment = target.partition("#")
            if not path:
                # Same-document anchor.
                resolved = os.path.join(REPO_ROOT, document)
            else:
                resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                broken.append(f"{document}: {target} -> missing {resolved}")
                continue
            if fragment and resolved.endswith(".md"):
                headings = _HEADING.findall(
                    _without_fences(_read(os.path.relpath(resolved, REPO_ROOT)))
                )
                if fragment not in {_github_anchor(h) for h in headings}:
                    broken.append(f"{document}: {target} -> no heading #{fragment}")
    return broken


def main() -> int:
    executed = run_python_blocks("README.md")
    print(f"README.md: {executed} python block(s) executed")
    broken = check_links()
    if broken:
        print("broken intra-doc links:")
        for line in broken:
            print(f"  {line}")
        return 1
    print(f"links: ok across {', '.join(CHECKED_DOCUMENTS)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
