#!/usr/bin/env python
"""AST lints encoding this repository's engine invariants (REPRO-L001..L009).

The invariants below were established in prose across earlier changes; this
tool makes them machine-checked so they cannot erode silently:

* **REPRO-L001** — ``numpy`` is imported in exactly one place,
  ``src/repro/storage/columns.py``; everything else goes through the column
  store protocol (or the sanctioned ``from repro.storage.columns import
  numpy`` re-export, which keeps the optional-dependency gating in one
  module).
* **REPRO-L002** — wall-clock access (the ``time`` / ``datetime`` modules)
  is confined to the sanctioned timing writers: the bench package and the
  API/optimizer modules that fill ``*_seconds`` report fields.  Everywhere
  else, timing creep makes results irreproducible.  ``time.time()`` is
  banned outright — measured intervals use ``time.perf_counter()``.
* **REPRO-L003** — a Relation's row storage (``.rows`` / ``._rows``) is
  mutated only inside ``src/repro/storage/relation.py``, whose methods
  invalidate the derived caches (column cache, vectorized store); outside
  mutation silently desynchronizes them.
* **REPRO-L004** — no mutable default arguments.
* **REPRO-L005** — every package ``__init__.py`` declares ``__all__``.
* **REPRO-L006** — no unused module-level imports.
* **REPRO-L007** — builtin names are not shadowed by assignments,
  parameters, or loop targets.
* **REPRO-L008** — process-level parallelism (``multiprocessing`` /
  ``concurrent.futures``) is confined to ``src/repro/parallel/``; every
  other layer stays deterministic and single-process, taking parallelism
  only through the :class:`~repro.parallel.ShardPool` interface.
* **REPRO-L009** — ``threading`` is imported only inside
  ``src/repro/serving/`` and ``src/repro/parallel/``; everything else
  borrows primitives from the ``repro.serving.sync`` re-export (the same
  pattern as the numpy re-export), so concurrency stays auditable in two
  packages and the engine layers cannot quietly grow threads.

Usage::

    python tools/lint_invariants.py [path ...]     # default: src/repro tools

Findings print as ``path:line: CODE message`` and the exit status is 1 when
any exist.  A finding is suppressed by an inline comment on its line::

    import time  # lint: allow(L002) -- justification

Codes may be written with or without the ``REPRO-`` prefix; several codes
separate with commas.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, NamedTuple, Sequence, Set, Tuple

#: The one module allowed to import numpy (posix-style path suffix).
COLUMNS_MODULE = "repro/storage/columns.py"
#: The one module allowed to mutate Relation row storage.
RELATION_MODULE = "repro/storage/relation.py"
#: Modules allowed to read the wall clock: the bench package plus the
#: writers that fill ``*_seconds`` / timing report fields.  This allowlist
#: is configuration — a new timing writer is added here, not suppressed
#: inline, so the sanctioned set stays reviewable in one place.
TIMING_ALLOWLIST: Tuple[str, ...] = (
    "repro/bench/",
    "repro/api/warehouse.py",
    "repro/mqo/greedy.py",
    "repro/maintenance/greedy.py",
    "repro/maintenance/optimizer.py",
    "repro/parallel/capacity.py",
    "repro/serving/",
)
#: The one package allowed to spawn processes (posix-style path prefix).
PARALLEL_PACKAGE = "repro/parallel/"
#: Module roots that imply process-level parallelism (L008).
_PARALLEL_MODULES = ("multiprocessing", "concurrent")
#: The packages allowed to import threading (posix-style path prefixes):
#: the serving tier (whose ``sync`` module re-exports the primitives) and
#: the parallel substrate.
THREADING_PACKAGES: Tuple[str, ...] = ("repro/serving/", "repro/parallel/")
#: Methods that mutate a list in place (for the L003 ``.rows`` check).
_LIST_MUTATORS = frozenset(
    {"append", "extend", "insert", "pop", "clear", "remove", "sort", "reverse"}
)
#: Relation-internal attributes nothing outside relation.py may assign.
_RELATION_INTERNALS = frozenset({"_rows", "_column_cache"})
#: Builtins whose shadowing is flagged (L007).  Deliberately curated — the
#: names below are either containers/types (shadowing breaks later calls in
#: the same scope) or widely-used functions.
_SHADOWED_BUILTINS = frozenset(
    {
        "list", "dict", "set", "tuple", "type", "str", "int", "float",
        "bool", "bytes", "object", "open", "input", "id", "sum", "min",
        "max", "all", "any", "len", "hash", "map", "filter", "zip",
        "range", "next", "iter", "format", "vars", "dir",
    }
)

_SUPPRESS = re.compile(r"#\s*lint:\s*allow\(([A-Za-z0-9,\s-]+)\)")


class Finding(NamedTuple):
    path: Path
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _posix(path: Path) -> str:
    return path.as_posix()


def _matches(path: Path, suffix: str) -> bool:
    text = _posix(path)
    if suffix.endswith("/"):
        return f"/{suffix}" in f"/{text}"
    return text.endswith(suffix)


def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Line number → codes suppressed on that line."""
    out: Dict[int, Set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(line)
        if match is None:
            continue
        codes = {
            code.strip().upper().replace("REPRO-", "")
            for code in match.group(1).split(",")
            if code.strip()
        }
        out[number] = {f"REPRO-{code}" for code in codes}
    return out


# --------------------------------------------------------------------- checks

def _check_numpy_imports(tree: ast.Module, path: Path) -> List[Finding]:
    if _matches(path, COLUMNS_MODULE):
        return []
    findings = []
    for node in ast.walk(tree):
        names: List[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            names = [node.module] if node.module else []
        if any(name == "numpy" or name.startswith("numpy.") for name in names):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "REPRO-L001",
                    "numpy imported outside storage/columns.py — use the "
                    "column store protocol (or the repro.storage.columns "
                    "re-export)",
                )
            )
    return findings


def _check_wall_clock(tree: ast.Module, path: Path) -> List[Finding]:
    findings = []
    allowed = any(_matches(path, suffix) for suffix in TIMING_ALLOWLIST)
    for node in ast.walk(tree):
        if not allowed:
            names: List[str] = []
            if isinstance(node, ast.Import):
                names = [alias.name.split(".")[0] for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module.split(".")[0]]
            if any(name in ("time", "datetime") for name in names):
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "REPRO-L002",
                        "wall-clock module imported outside a sanctioned "
                        "timing writer (see TIMING_ALLOWLIST in "
                        "tools/lint_invariants.py)",
                    )
                )
        # time.time() is banned even in the allowlist: intervals are
        # measured with the monotonic perf_counter.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "time"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "REPRO-L002",
                    "time.time() is not monotonic — use time.perf_counter()",
                )
            )
    return findings


def _check_process_parallelism(tree: ast.Module, path: Path) -> List[Finding]:
    if _matches(path, PARALLEL_PACKAGE):
        return []
    findings = []
    for node in ast.walk(tree):
        names: List[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = [node.module]
        if any(
            name == root or name.startswith(root + ".")
            for name in names
            for root in _PARALLEL_MODULES
        ):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "REPRO-L008",
                    "process-level parallelism imported outside "
                    "src/repro/parallel/ — go through repro.parallel.ShardPool "
                    "so sharding, merging and verification stay in one place",
                )
            )
    return findings


def _check_threading_imports(tree: ast.Module, path: Path) -> List[Finding]:
    if any(_matches(path, prefix) for prefix in THREADING_PACKAGES):
        return []
    findings = []
    for node in ast.walk(tree):
        names: List[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = [node.module]
        if any(
            name == "threading" or name.startswith("threading.") for name in names
        ):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "REPRO-L009",
                    "threading imported outside src/repro/serving/ and "
                    "src/repro/parallel/ — take primitives from the "
                    "repro.serving.sync re-export so concurrency stays "
                    "confined to the serving and parallel tiers",
                )
            )
    return findings


def _check_relation_mutation(tree: ast.Module, path: Path) -> List[Finding]:
    if _matches(path, RELATION_MODULE):
        return []
    findings = []

    def flag(node: ast.AST, what: str) -> None:
        findings.append(
            Finding(
                path,
                node.lineno,
                "REPRO-L003",
                f"{what} mutates Relation row storage outside "
                f"storage/relation.py — use the _invalidate()-guarded "
                f"methods (append/extend/replace_rows)",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                # x._rows = ... / x.rows[i] = ...
                if isinstance(target, ast.Attribute) and target.attr in _RELATION_INTERNALS:
                    flag(target, f"assignment to .{target.attr}")
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr in ("rows", "_rows")
                ):
                    flag(target, f"item assignment into .{target.value.attr}")
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LIST_MUTATORS
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr in ("rows", "_rows")
        ):
            flag(node, f".{node.func.value.attr}.{node.func.attr}()")
    return findings


def _check_mutable_defaults(tree: ast.Module, path: Path) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                findings.append(
                    Finding(
                        path,
                        default.lineno,
                        "REPRO-L004",
                        f"mutable default argument in {node.name}() — "
                        f"default to None and construct inside",
                    )
                )
    return findings


def _check_dunder_all(tree: ast.Module, path: Path) -> List[Finding]:
    if path.name != "__init__.py":
        return []
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                return []
    return [
        Finding(
            path,
            1,
            "REPRO-L005",
            "package __init__.py does not declare __all__",
        )
    ]


def _check_unused_imports(tree: ast.Module, path: Path) -> List[Finding]:
    imported: List[Tuple[str, int]] = []
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                imported.append((bound, node.lineno))
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                imported.append((alias.asname or alias.name, node.lineno))
    if not imported:
        return []
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # "a.b" usage of "import a.b" style roots is covered by the
            # Name node; nothing extra needed here.
            pass
    # Names re-exported through __all__ count as used.
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            for element in ast.walk(node.value):
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    used.add(element.value)
    return [
        Finding(
            path,
            lineno,
            "REPRO-L006",
            f"module-level import {name!r} is unused",
        )
        for name, lineno in imported
        if name not in used
    ]


def _check_builtin_shadowing(tree: ast.Module, path: Path) -> List[Finding]:
    findings = []

    def flag(name: str, node: ast.AST, what: str) -> None:
        if name in _SHADOWED_BUILTINS:
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "REPRO-L007",
                    f"{what} {name!r} shadows the builtin",
                )
            )

    def flag_target(target: ast.expr, what: str) -> None:
        for leaf in ast.walk(target):
            if isinstance(leaf, ast.Name) and isinstance(leaf.ctx, ast.Store):
                flag(leaf.id, leaf, what)

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                flag(arg.arg, arg, "parameter")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                flag_target(target, "assignment to")
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            flag_target(node.target, "assignment to")
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            flag_target(node.target, "loop target")
        elif isinstance(node, ast.comprehension):
            flag_target(node.target, "comprehension target")
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    flag_target(item.optional_vars, "with-target")
    return findings


_CHECKS = (
    _check_numpy_imports,
    _check_wall_clock,
    _check_process_parallelism,
    _check_threading_imports,
    _check_relation_mutation,
    _check_mutable_defaults,
    _check_dunder_all,
    _check_unused_imports,
    _check_builtin_shadowing,
)


# --------------------------------------------------------------------- driver

def lint_file(path: Path) -> List[Finding]:
    """All unsuppressed findings for one Python file."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, "REPRO-L000", f"syntax error: {exc.msg}")]
    suppressed = _suppressions(source)
    findings: List[Finding] = []
    for check in _CHECKS:
        findings.extend(check(tree, path))
    return [
        finding
        for finding in findings
        if finding.code not in suppressed.get(finding.line, set())
    ]


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def main(argv: Sequence[str]) -> int:
    targets = list(argv) or ["src/repro", "tools"]
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(targets):
        checked += 1
        findings.extend(lint_file(path))
    findings.sort(key=lambda f: (str(f.path), f.line, f.code))
    for finding in findings:
        print(finding.render())
    print(
        f"lint_invariants: {checked} files checked, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
