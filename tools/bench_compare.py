#!/usr/bin/env python3
"""Diff the ``timing`` sub-objects of two ``BENCH_*.json`` trees.

Every benchmark in this repo records its machine-readable numbers under
``results/BENCH_<name>.json`` with wall-clock measurements grouped in
``timing`` objects (possibly nested — per point, per backend).  This tool
pairs two such trees — typically a baseline checkout's ``results/``
directory against the working tree's — and prints one line per shared
timing entry:

* keys ending in ``_seconds`` or ``_ms`` are wall times, reported as a
  **speedup** (baseline / current; > 1 means the current tree is faster) —
  the ``_ms`` spelling is what latency percentiles (``p50_ms`` / ``p99_ms``
  in ``BENCH_serving.json``) use;
* every other numeric key (speedup gates, ratios, throughputs) is reported
  as the plain change factor (current / baseline).

Usage::

    python tools/bench_compare.py <baseline> <current> [--fail-under RATIO]

where each argument is either a single ``BENCH_*.json`` file or a
directory containing them (only filenames present on both sides are
compared).  Exits non-zero when the two trees share no timing entries at
all — a wiring error in CI, not a benchmark regression.

``--fail-under`` turns the table into a regression gate: when the
geometric-mean speedup over all shared wall-clock entries falls below the
given ratio, the exit status is non-zero.  A floor of ``0.8`` tolerates
~20% noise on shared CI runners while still catching real slowdowns.
Sub-millisecond cells (either side below 1 ms) are shown but excluded from
the geomean: at that scale scheduler jitter dwarfs the measurement, and a
noise-driven 0.3 ms → 0.9 ms swing must not fail the gate on its own.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, Iterator, List, Tuple


def _timing_entries(payload, path: str = "") -> Iterator[Tuple[str, float]]:
    """Yield ``(json_path, value)`` for every numeric leaf under a ``timing``."""
    if isinstance(payload, dict):
        for key, value in sorted(payload.items()):
            child = f"{path}.{key}" if path else key
            if key == "timing" and isinstance(value, dict):
                for leaf, number in sorted(value.items()):
                    if isinstance(number, (int, float)) and not isinstance(number, bool):
                        yield f"{child}.{leaf}", float(number)
            else:
                yield from _timing_entries(value, child)
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            yield from _timing_entries(item, f"{path}[{index}]")


def _is_wall_clock(entry: str) -> bool:
    """Whether a timing key records a wall-clock duration (ratio = speedup)."""
    leaf = entry.rsplit(".", 1)[-1]
    return leaf.endswith("_seconds") or leaf.endswith("_ms")


def _sub_millisecond(entry: str, old_value: float, new_value: float) -> bool:
    """Whether either side of a wall-clock cell is below one millisecond.

    Such cells are noise-dominated on shared runners and are excluded from
    the geomean gate (still printed, marked ``~``).
    """
    floor = 1.0 if entry.rsplit(".", 1)[-1].endswith("_ms") else 0.001
    return old_value < floor or new_value < floor


def _load(path: str) -> Dict[str, dict]:
    """Map ``BENCH_*.json`` basenames to parsed payloads for a file or dir."""
    if os.path.isdir(path):
        names = sorted(
            name
            for name in os.listdir(path)
            if name.startswith("BENCH_") and name.endswith(".json")
        )
        files = [os.path.join(path, name) for name in names]
    else:
        files = [path]
    payloads = {}
    for file in files:
        with open(file, "r", encoding="utf-8") as handle:
            payloads[os.path.basename(file)] = json.load(handle)
    return payloads


def compare_trees(baseline: str, current: str) -> List[Tuple[str, float, float, float]]:
    """``(entry, baseline_value, current_value, ratio)`` per shared timing leaf.

    The ratio follows the key's meaning: baseline/current for ``*_seconds``
    (speedup), current/baseline otherwise (change factor).
    """
    old_payloads = _load(baseline)
    new_payloads = _load(current)
    if os.path.isfile(baseline) and os.path.isfile(current):
        # Two explicit files always pair with each other, whatever their
        # basenames (e.g. a downloaded artifact vs the working tree).
        name = os.path.basename(current)
        old_payloads = {name: next(iter(old_payloads.values()))}
        new_payloads = {name: next(iter(new_payloads.values()))}
    rows = []
    for name in sorted(set(old_payloads) & set(new_payloads)):
        old_entries = dict(_timing_entries(old_payloads[name]))
        new_entries = dict(_timing_entries(new_payloads[name]))
        for entry in sorted(set(old_entries) & set(new_entries)):
            old_value = old_entries[entry]
            new_value = new_entries[entry]
            if _is_wall_clock(entry):
                ratio = old_value / new_value if new_value else math.inf
            else:
                ratio = new_value / old_value if old_value else math.inf
            rows.append((f"{name}:{entry}", old_value, new_value, ratio))
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json file or results/ dir")
    parser.add_argument("current", help="current BENCH_*.json file or results/ dir")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero when the geometric-mean wall-clock speedup "
        "(baseline/current) falls below this ratio",
    )
    args = parser.parse_args(argv)

    rows = compare_trees(args.baseline, args.current)
    if not rows:
        print("bench_compare: no shared timing entries between the two trees", file=sys.stderr)
        return 1

    width = max(len(entry) for entry, *_ in rows)
    print(f"{'entry'.ljust(width)}  {'baseline':>12}  {'current':>12}  {'ratio':>8}")
    speedups = []
    ignored = 0
    for entry, old_value, new_value, ratio in rows:
        wall_clock = _is_wall_clock(entry)
        if not wall_clock:
            marker = "·"
        elif _sub_millisecond(entry, old_value, new_value):
            marker = "~"  # sub-millisecond: printed, excluded from the gate
        else:
            marker = "x"
        print(f"{entry.ljust(width)}  {old_value:12.6g}  {new_value:12.6g}  {ratio:7.2f}{marker}")
        if wall_clock and math.isfinite(ratio) and ratio > 0:
            if _sub_millisecond(entry, old_value, new_value):
                ignored += 1
            else:
                speedups.append(ratio)
    geomean = None
    if speedups:
        geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        print(f"\ngeometric-mean speedup over {len(speedups)} timing entries: {geomean:.2f}x")
        if ignored:
            print(f"({ignored} sub-millisecond entr{'y' if ignored == 1 else 'ies'} excluded from the gate)")
    if args.fail_under is not None:
        if geomean is None:
            if ignored:
                # Every shared wall-clock cell was sub-millisecond: nothing
                # the gate could meaningfully judge — pass, loudly.
                print(
                    f"bench_compare: all {ignored} wall-clock entries are "
                    f"sub-millisecond; the --fail-under gate has nothing to "
                    f"judge and passes",
                    file=sys.stderr,
                )
                return 0
            # A gate over zero wall-clock entries would vacuously pass —
            # treat it as the same wiring error as two disjoint trees.
            print(
                "bench_compare: --fail-under given but no wall-clock entries "
                "were compared",
                file=sys.stderr,
            )
            return 1
        if geomean < args.fail_under:
            print(
                f"bench_compare: geometric-mean speedup {geomean:.2f}x is below "
                f"the --fail-under floor {args.fail_under:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
