"""Shared fixtures for the test suite.

Two families of fixtures are provided:

* a tiny hand-built star schema (``sales``/``products``/``stores``) used by
  the fine-grained unit tests, where every expected tuple can be written out
  by hand; and
* a small generated TPC-D database (scale factor well below the paper's 0.1)
  used by the integration tests that exercise the full optimizer/refresh
  pipeline end to end.
"""

from __future__ import annotations

import pytest

from repro.catalog.catalog import Catalog, IndexDef
from repro.catalog.schema import Column, ColumnType, Schema, TableDef
from repro.catalog.statistics import ColumnStats, TableStats
from repro.engine.database import Database


# ----------------------------------------------------------- tiny star schema

SALES_SCHEMA = Schema.of(
    Column("sale_id", ColumnType.INTEGER),
    Column("product_id", ColumnType.INTEGER),
    Column("store_id", ColumnType.INTEGER),
    Column("quantity", ColumnType.INTEGER),
    Column("amount", ColumnType.FLOAT),
)

PRODUCTS_SCHEMA = Schema.of(
    Column("p_id", ColumnType.INTEGER),
    Column("p_name", ColumnType.STRING),
    Column("p_category", ColumnType.STRING),
    Column("p_price", ColumnType.FLOAT),
)

STORES_SCHEMA = Schema.of(
    Column("st_id", ColumnType.INTEGER),
    Column("st_city", ColumnType.STRING),
    Column("st_region", ColumnType.STRING),
)

SALES_ROWS = [
    (1, 10, 100, 2, 20.0),
    (2, 10, 101, 1, 10.0),
    (3, 11, 100, 5, 75.0),
    (4, 12, 102, 1, 30.0),
    (5, 11, 101, 2, 30.0),
    (6, 12, 100, 4, 120.0),
]

PRODUCTS_ROWS = [
    (10, "widget", "tools", 10.0),
    (11, "gadget", "tools", 15.0),
    (12, "gizmo", "toys", 30.0),
]

STORES_ROWS = [
    (100, "springfield", "north"),
    (101, "shelbyville", "south"),
    (102, "ogdenville", "north"),
]


def build_star_tables():
    """Table definitions for the tiny star schema."""
    sales = TableDef(
        "sales",
        SALES_SCHEMA,
        ("sale_id",),
        (("product_id", "products", "p_id"), ("store_id", "stores", "st_id")),
    )
    products = TableDef("products", PRODUCTS_SCHEMA, ("p_id",))
    stores = TableDef("stores", STORES_SCHEMA, ("st_id",))
    return sales, products, stores


@pytest.fixture
def star_catalog() -> Catalog:
    """Catalog for the star schema with declared statistics and PK indexes."""
    sales, products, stores = build_star_tables()
    catalog = Catalog()
    catalog.register_table(
        sales,
        TableStats(
            6.0,
            SALES_SCHEMA.tuple_width,
            {
                "sale_id": ColumnStats(distinct=6, min_value=1, max_value=6),
                "product_id": ColumnStats(distinct=3, min_value=10, max_value=12),
                "store_id": ColumnStats(distinct=3, min_value=100, max_value=102),
                "quantity": ColumnStats(distinct=5, min_value=1, max_value=5),
            },
        ),
        create_pk_index=True,
    )
    catalog.register_table(
        products,
        TableStats(3.0, PRODUCTS_SCHEMA.tuple_width, {"p_id": ColumnStats(distinct=3)}),
        create_pk_index=True,
    )
    catalog.register_table(
        stores,
        TableStats(3.0, STORES_SCHEMA.tuple_width, {"st_id": ColumnStats(distinct=3)}),
        create_pk_index=True,
    )
    return catalog


@pytest.fixture
def star_database(star_catalog) -> Database:
    """Executable database for the star schema with the hand-written rows."""
    sales, products, stores = build_star_tables()
    database = Database(star_catalog)
    database.create_table(sales, SALES_ROWS)
    database.create_table(products, PRODUCTS_ROWS)
    database.create_table(stores, STORES_ROWS)
    for index in star_catalog.all_indexes():
        database.build_index(index)
    return database


# ------------------------------------------------------- small TPC-D database

@pytest.fixture(scope="session")
def tiny_tpcd_database() -> Database:
    """A populated TPC-D database small enough for executable refresh tests."""
    from repro.workloads.datagen import TpcdDataGenerator

    generator = TpcdDataGenerator(scale_factor=0.0004, seed=11)
    return generator.populate(
        tables=["region", "nation", "supplier", "customer", "orders", "lineitem"]
    )


@pytest.fixture(scope="session")
def tpcd_catalog_small():
    """A TPC-D catalog at a reduced scale factor for optimizer tests."""
    from repro.workloads import tpcd

    return tpcd.tpcd_catalog(scale_factor=0.01)
