"""Unit tests for the Database runtime container."""

import pytest

from repro.catalog.catalog import IndexDef
from repro.catalog.schema import Schema, TableDef
from repro.engine.database import Database, DatabaseError
from repro.storage.delta import Delta, DeltaKind
from repro.storage.relation import Relation


def test_create_and_lookup_table(star_database):
    assert star_database.has_relation("sales")
    assert len(star_database.table("sales")) == 6
    assert set(star_database.table_names()) == {"sales", "products", "stores"}


def test_missing_relation_raises(star_database):
    with pytest.raises(DatabaseError):
        star_database.table("missing")
    with pytest.raises(DatabaseError):
        star_database.view("missing")


def test_load_table_replaces_contents_and_stats(star_database):
    schema = star_database.table("products").schema
    star_database.load_table("products", Relation(schema, [(99, "only", "misc", 1.0)]))
    assert len(star_database.table("products")) == 1
    assert star_database.catalog.stats("products").cardinality == 1.0


def test_load_unknown_table_raises(star_database):
    with pytest.raises(DatabaseError):
        star_database.load_table("nope", Relation(Schema.from_names(["x"]), []))


def test_materialize_and_drop_view(star_database):
    view = Relation(Schema.from_names(["x"]), [(1,)])
    star_database.materialize_view("v", view)
    assert star_database.has_view("v")
    assert star_database.view_names() == ["v"]
    assert star_database.table("v") is view  # views resolvable as relations
    star_database.drop_view("v")
    assert not star_database.has_view("v")


def test_apply_update_insert_and_delete(star_database):
    schema = star_database.table("stores").schema
    star_database.apply_update("stores", DeltaKind.INSERT, Relation(schema, [(103, "newtown", "east")]))
    assert len(star_database.table("stores")) == 4
    star_database.apply_update("stores", DeltaKind.DELETE, Relation(schema, [(103, "newtown", "east")]))
    assert len(star_database.table("stores")) == 3


def test_apply_delta_applies_inserts_then_deletes(star_database):
    schema = star_database.table("stores").schema
    delta = Delta(
        "stores",
        inserts=Relation(schema, [(104, "x", "y")]),
        deletes=Relation(schema, [(100, "springfield", "north")]),
    )
    star_database.apply_delta(delta)
    keys = {row[0] for row in star_database.table("stores")}
    assert 104 in keys and 100 not in keys


def test_update_view_merges_differential(star_database):
    schema = Schema.from_names(["k"])
    star_database.materialize_view("v", Relation(schema, [(1,), (2,)]))
    star_database.update_view("v", inserts=Relation(schema, [(3,)]), deletes=Relation(schema, [(1,)]))
    assert sorted(star_database.view("v").rows) == [(2,), (3,)]


def test_indexes_rebuilt_after_update(star_database):
    index = star_database.index_for("sales", ["sale_id"])
    assert index is not None
    schema = star_database.table("sales").schema
    star_database.apply_update("sales", DeltaKind.INSERT, Relation(schema, [(7, 10, 100, 1, 5.0)]))
    rebuilt = star_database.index_for("sales", ["sale_id"])
    assert rebuilt.lookup((7,))


def test_statistics_refresh_on_update(star_database):
    schema = star_database.table("sales").schema
    before = star_database.catalog.stats("sales").cardinality
    star_database.apply_update("sales", DeltaKind.INSERT, Relation(schema, [(8, 10, 100, 1, 5.0)]))
    assert star_database.catalog.stats("sales").cardinality == before + 1


def test_copy_is_deep_for_contents(star_database):
    clone = star_database.copy()
    schema = clone.table("sales").schema
    clone.apply_update("sales", DeltaKind.INSERT, Relation(schema, [(9, 10, 100, 1, 5.0)]))
    assert len(clone.table("sales")) == len(star_database.table("sales")) + 1


def test_build_index_registers_in_catalog(star_database):
    star_database.build_index(IndexDef("sales", ("product_id",), kind="hash"))
    assert star_database.catalog.has_index_on("sales", ["product_id"])
    assert star_database.index_for("sales", ["product_id"]) is not None


def test_rematerializing_a_view_rebuilds_its_indexes(star_database):
    from repro.catalog.catalog import IndexDef
    from repro.storage.relation import Relation

    sales = star_database.table("sales")
    star_database.materialize_view("v_idx", Relation(sales.schema, sales.rows[:2]))
    star_database.build_index(IndexDef("v_idx", ("sale_id",), kind="hash"))
    replacement = Relation(sales.schema, [(99, 1, 1, 1, 1.0)])
    star_database.materialize_view("v_idx", replacement)
    index = star_database.index_for("v_idx", ["sale_id"])
    assert index is not None
    assert index.lookup((99,)) == [(99, 1, 1, 1, 1.0)]
    assert index.lookup((1,)) == []


def test_load_table_rebuilds_indexes(star_database):
    from repro.storage.relation import Relation

    sales = star_database.table("sales")
    replacement = Relation(sales.schema, [(50, 1, 1, 1, 1.0)])
    star_database.load_table("sales", replacement)
    index = star_database.index_for("sales", ["sale_id"])
    assert index is not None
    assert index.lookup((50,)) == [(50, 1, 1, 1, 1.0)]
    assert index.lookup((1,)) == []


# ------------------------------------------- incremental index maintenance
#
# apply_update/update_view maintain indexes from the delta bags; after any
# sequence of updates, every index must answer probes exactly like one
# rebuilt from the final contents.


def assert_indexes_match_rebuild(database, name, columns, probe_keys):
    from repro.storage.index import build_index

    index = database.index_for(name, columns)
    assert index is not None
    rebuilt = build_index(database.table(name), columns, kind="hash")
    for key in probe_keys:
        assert sorted(index.lookup(key)) == sorted(rebuilt.lookup(key))
    assert len(index) == len(database.table(name))


def test_apply_update_maintains_indexes_incrementally(star_database):
    star_database.build_index(IndexDef("sales", ("product_id",), kind="hash"))
    schema = star_database.table("sales").schema
    star_database.apply_update(
        "sales", DeltaKind.INSERT, Relation(schema, [(7, 10, 100, 1, 5.0)])
    )
    index_after_insert = star_database.index_for("sales", ["product_id"])
    star_database.apply_update(
        "sales", DeltaKind.DELETE, Relation(schema, [(1, 10, 100, 2, 20.0)])
    )
    # The small deltas stay under the incremental threshold: the index object
    # must have been maintained in place, not rebuilt.
    assert star_database.index_for("sales", ["product_id"]) is index_after_insert
    assert_indexes_match_rebuild(
        star_database, "sales", ["product_id"], [(10,), (11,), (12,), (99,)]
    )
    # Both index kinds stay correct (the PK index on sale_id is a btree).
    btree = star_database.index_for("sales", ["sale_id"])
    assert btree.lookup((7,)) == [(7, 10, 100, 1, 5.0)]
    assert btree.lookup((1,)) == []


def test_large_delta_falls_back_to_rebuild(star_database):
    star_database.build_index(IndexDef("stores", ("st_id",), kind="hash"))
    before = star_database.index_for("stores", ["st_id"])
    schema = star_database.table("stores").schema
    big = Relation(schema, [(200 + i, f"town{i}", "west") for i in range(10)])
    star_database.apply_update("stores", DeltaKind.INSERT, big)
    after = star_database.index_for("stores", ["st_id"])
    assert after is not before  # rebuilt, not spliced
    assert after.lookup((205,)) == [(205, "town5", "west")]


def test_update_view_maintains_view_indexes(star_database):
    sales = star_database.table("sales")
    star_database.materialize_view("v_sales", Relation(sales.schema, sales.rows))
    star_database.build_index(IndexDef("v_sales", ("product_id",), kind="hash"))
    star_database.update_view(
        "v_sales",
        inserts=Relation(sales.schema, [(7, 13, 100, 1, 5.0)]),
        deletes=Relation(sales.schema, [(1, 10, 100, 2, 20.0)]),
    )
    assert_indexes_match_rebuild(
        star_database, "v_sales", ["product_id"], [(10,), (13,), (99,)]
    )


# -------------------------------------------------------- view statistics


def test_view_statistics_follow_delta_merges(star_database):
    schema = Schema.from_names(["k"])
    star_database.materialize_view("v_stats", Relation(schema, [(1,), (2,)]))
    stats = star_database.catalog.view_stats("v_stats")
    assert stats is not None and stats.cardinality == 2.0
    star_database.update_view(
        "v_stats", inserts=Relation(schema, [(3,), (4,)]), deletes=Relation(schema, [(1,)])
    )
    assert star_database.catalog.view_stats("v_stats").cardinality == 3.0
    star_database.drop_view("v_stats")
    assert star_database.catalog.view_stats("v_stats") is None


def test_base_table_cardinality_tracks_updates_cheaply(star_database):
    schema = star_database.table("sales").schema
    full = star_database.catalog.stats("sales")
    star_database.apply_update(
        "sales", DeltaKind.INSERT, Relation(schema, [(8, 10, 100, 1, 5.0)])
    )
    refreshed = star_database.catalog.stats("sales")
    assert refreshed.cardinality == full.cardinality + 1
    # Column distributions are maintained incrementally from the delta bag:
    # the inserted amount of 5.0 widens the min bound and lands in the
    # histogram, whose total tracks the new cardinality.
    assert refreshed.column("amount").min_value == 5.0
    assert refreshed.column("amount").max_value == full.column("amount").max_value
    histogram = refreshed.column("amount").histogram
    assert histogram is not None
    assert histogram.total == full.column("amount").histogram.total + 1


# ---------------------------------------------------- vectorized delete path

from repro.storage.columns import NumpyColumnStore, numpy_enabled  # noqa: E402
from repro.storage.relation import multiset_subtract  # noqa: E402

needs_numpy = pytest.mark.skipif(
    not numpy_enabled(), reason="numpy backend unavailable"
)


def _subtract_via_mask(names, rows, deletes):
    """Run the columnar keep-mask; None means the row fallback was chosen."""
    schema = Schema.from_names(names)
    store = NumpyColumnStore.from_rows(rows, len(names))
    keep = Database._vector_delete_mask(store, Relation(schema, deletes))
    if keep is None:
        return None
    if keep is True:
        return list(rows)
    return [row for row, kept in zip(rows, keep) if kept]


@needs_numpy
def test_codes_mask_handles_string_only_keys():
    # No numeric column to narrow on: the factorized-codes route must run
    # (before this path, string-keyed views always fell back to Python rows).
    rows = [("fr", "a"), ("de", "b"), ("fr", "a"), ("us", "c")]
    deletes = [("fr", "a"), ("us", "c")]
    assert _subtract_via_mask(["k", "v"], rows, deletes) == multiset_subtract(
        rows, deletes
    )


@needs_numpy
def test_codes_mask_removes_one_copy_per_match_in_first_match_order():
    rows = [("x", 1), ("x", 1), ("x", 1), ("y", 2)]
    deletes = [("x", 1), ("x", 1)]
    result = _subtract_via_mask(["k", "n"], rows, deletes)
    assert result == multiset_subtract(rows, deletes)
    assert result == [("x", 1), ("y", 2)]


@needs_numpy
def test_codes_mask_over_delete_removes_every_copy():
    rows = [("x", 1), ("x", 1)]
    deletes = [("x", 1)] * 5
    assert _subtract_via_mask(["k", "n"], rows, deletes) == []


@needs_numpy
def test_codes_mask_matches_ints_against_floats():
    # multiset_subtract hashes 1 == 1.0 equal; dtype promotion inside the
    # codes route must agree.
    rows = [(1, "a"), (2, "b"), (3, "c")]
    deletes = [(1.0, "a")]
    assert _subtract_via_mask(["n", "v"], rows, deletes) == multiset_subtract(
        rows, deletes
    )


@needs_numpy
def test_codes_mask_falls_back_on_none_values():
    # None beside strings makes an object column np.unique cannot order:
    # the vector path must bow out, not crash or guess.
    rows = [("a", None), ("b", "x")]
    deletes = [("a", None)]
    assert _subtract_via_mask(["k", "v"], rows, deletes) is None


@needs_numpy
def test_codes_mask_falls_back_on_nan_probes():
    # NaN breaks equality-by-value; first-match semantics are undefined for
    # it in array form, so the row path (object identity) must decide.
    rows = [(1.5, "a"), (2.5, "b")]
    deletes = [(float("nan"), "a")]
    schema = Schema.from_names(["n", "v"])
    store = NumpyColumnStore.from_rows(rows, 2)
    assert Database._vector_codes_mask(store, Relation(schema, deletes)) is None


@needs_numpy
def test_codes_route_taken_when_narrowing_stays_wide():
    # Every row shares the numeric value, so isin-narrowing cannot shrink
    # the candidate set; the codes route must still subtract exactly.
    rows = [(7, f"s{i % 3}") for i in range(64)]
    deletes = [(7, "s0"), (7, "s1")]
    assert _subtract_via_mask(["n", "v"], rows, deletes) == multiset_subtract(
        rows, deletes
    )


@needs_numpy
def test_vector_mask_empty_delta_keeps_everything():
    rows = [("a", 1), ("b", 2)]
    assert _subtract_via_mask(["k", "n"], rows, []) == rows
