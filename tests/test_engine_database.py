"""Unit tests for the Database runtime container."""

import pytest

from repro.catalog.catalog import IndexDef
from repro.catalog.schema import Schema, TableDef
from repro.engine.database import Database, DatabaseError
from repro.storage.delta import Delta, DeltaKind
from repro.storage.relation import Relation


def test_create_and_lookup_table(star_database):
    assert star_database.has_relation("sales")
    assert len(star_database.table("sales")) == 6
    assert set(star_database.table_names()) == {"sales", "products", "stores"}


def test_missing_relation_raises(star_database):
    with pytest.raises(DatabaseError):
        star_database.table("missing")
    with pytest.raises(DatabaseError):
        star_database.view("missing")


def test_load_table_replaces_contents_and_stats(star_database):
    schema = star_database.table("products").schema
    star_database.load_table("products", Relation(schema, [(99, "only", "misc", 1.0)]))
    assert len(star_database.table("products")) == 1
    assert star_database.catalog.stats("products").cardinality == 1.0


def test_load_unknown_table_raises(star_database):
    with pytest.raises(DatabaseError):
        star_database.load_table("nope", Relation(Schema.from_names(["x"]), []))


def test_materialize_and_drop_view(star_database):
    view = Relation(Schema.from_names(["x"]), [(1,)])
    star_database.materialize_view("v", view)
    assert star_database.has_view("v")
    assert star_database.view_names() == ["v"]
    assert star_database.table("v") is view  # views resolvable as relations
    star_database.drop_view("v")
    assert not star_database.has_view("v")


def test_apply_update_insert_and_delete(star_database):
    schema = star_database.table("stores").schema
    star_database.apply_update("stores", DeltaKind.INSERT, Relation(schema, [(103, "newtown", "east")]))
    assert len(star_database.table("stores")) == 4
    star_database.apply_update("stores", DeltaKind.DELETE, Relation(schema, [(103, "newtown", "east")]))
    assert len(star_database.table("stores")) == 3


def test_apply_delta_applies_inserts_then_deletes(star_database):
    schema = star_database.table("stores").schema
    delta = Delta(
        "stores",
        inserts=Relation(schema, [(104, "x", "y")]),
        deletes=Relation(schema, [(100, "springfield", "north")]),
    )
    star_database.apply_delta(delta)
    keys = {row[0] for row in star_database.table("stores")}
    assert 104 in keys and 100 not in keys


def test_update_view_merges_differential(star_database):
    schema = Schema.from_names(["k"])
    star_database.materialize_view("v", Relation(schema, [(1,), (2,)]))
    star_database.update_view("v", inserts=Relation(schema, [(3,)]), deletes=Relation(schema, [(1,)]))
    assert sorted(star_database.view("v").rows) == [(2,), (3,)]


def test_indexes_rebuilt_after_update(star_database):
    index = star_database.index_for("sales", ["sale_id"])
    assert index is not None
    schema = star_database.table("sales").schema
    star_database.apply_update("sales", DeltaKind.INSERT, Relation(schema, [(7, 10, 100, 1, 5.0)]))
    rebuilt = star_database.index_for("sales", ["sale_id"])
    assert rebuilt.lookup((7,))


def test_statistics_refresh_on_update(star_database):
    schema = star_database.table("sales").schema
    before = star_database.catalog.stats("sales").cardinality
    star_database.apply_update("sales", DeltaKind.INSERT, Relation(schema, [(8, 10, 100, 1, 5.0)]))
    assert star_database.catalog.stats("sales").cardinality == before + 1


def test_copy_is_deep_for_contents(star_database):
    clone = star_database.copy()
    schema = clone.table("sales").schema
    clone.apply_update("sales", DeltaKind.INSERT, Relation(schema, [(9, 10, 100, 1, 5.0)]))
    assert len(clone.table("sales")) == len(star_database.table("sales")) + 1


def test_build_index_registers_in_catalog(star_database):
    star_database.build_index(IndexDef("sales", ("product_id",), kind="hash"))
    assert star_database.catalog.has_index_on("sales", ["product_id"])
    assert star_database.index_for("sales", ["product_id"]) is not None


def test_rematerializing_a_view_rebuilds_its_indexes(star_database):
    from repro.catalog.catalog import IndexDef
    from repro.storage.relation import Relation

    sales = star_database.table("sales")
    star_database.materialize_view("v_idx", Relation(sales.schema, sales.rows[:2]))
    star_database.build_index(IndexDef("v_idx", ("sale_id",), kind="hash"))
    replacement = Relation(sales.schema, [(99, 1, 1, 1, 1.0)])
    star_database.materialize_view("v_idx", replacement)
    index = star_database.index_for("v_idx", ["sale_id"])
    assert index is not None
    assert index.lookup((99,)) == [(99, 1, 1, 1, 1.0)]
    assert index.lookup((1,)) == []


def test_load_table_rebuilds_indexes(star_database):
    from repro.storage.relation import Relation

    sales = star_database.table("sales")
    replacement = Relation(sales.schema, [(50, 1, 1, 1, 1.0)])
    star_database.load_table("sales", replacement)
    index = star_database.index_for("sales", ["sale_id"])
    assert index is not None
    assert index.lookup((50,)) == [(50, 1, 1, 1, 1.0)]
    assert index.lookup((1,)) == []
