"""Unit tests for selection push-down and join flattening."""

import pytest

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Join,
    Select,
    walk,
)
from repro.algebra.predicates import conjuncts, eq, lt
from repro.algebra.rewrite import flatten_join_block, left_deep_join, push_down_selections
from repro.algebra.schema_derivation import derive_schema


def star_join():
    return Join(
        Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")]),
        BaseRelation("stores"),
        [("store_id", "st_id")],
    )


def test_push_down_moves_single_side_conjuncts(star_catalog):
    expression = Select(star_join(), lt("p_price", 20.0))
    rewritten = push_down_selections(expression, star_catalog)
    selects = [node for node in walk(rewritten) if isinstance(node, Select)]
    assert len(selects) == 1
    # The selection now sits directly on the products relation.
    assert isinstance(selects[0].child, BaseRelation)
    assert selects[0].child.name == "products"


def test_push_down_keeps_cross_input_predicates_on_top(star_catalog):
    expression = Select(star_join(), eq("p_name", "st_city"))
    rewritten = push_down_selections(expression, star_catalog)
    assert isinstance(rewritten, Select)
    assert isinstance(rewritten.child, Join)


def test_push_down_merges_cascading_selects(star_catalog):
    expression = Select(Select(BaseRelation("products"), lt("p_price", 20.0)), eq("p_category", "tools"))
    rewritten = push_down_selections(expression, star_catalog)
    assert isinstance(rewritten, Select)
    assert isinstance(rewritten.child, BaseRelation)
    assert len(conjuncts(rewritten.predicate)) == 2


def test_push_down_does_not_cross_aggregates(star_catalog):
    aggregate = Aggregate(
        BaseRelation("sales"), ["product_id"], [AggregateSpec(AggregateFunc.SUM, "amount", "total")]
    )
    expression = Select(aggregate, lt("total", 50.0))
    rewritten = push_down_selections(expression, star_catalog)
    assert isinstance(rewritten, Select)
    assert isinstance(rewritten.child, Aggregate)


def test_flatten_join_block_collects_leaves_and_conditions():
    block = flatten_join_block(star_join())
    assert sorted(leaf.canonical() for leaf in block.leaves) == ["products", "sales", "stores"]
    assert set(block.conditions) == {("product_id", "p_id"), ("store_id", "st_id")}
    assert not block.is_trivial


def test_flatten_trivial_block():
    block = flatten_join_block(BaseRelation("sales"))
    assert block.is_trivial


def test_left_deep_join_applies_conditions_when_available(star_catalog):
    leaves = [BaseRelation("sales"), BaseRelation("products"), BaseRelation("stores")]
    conditions = [("product_id", "p_id"), ("store_id", "st_id")]
    rebuilt = left_deep_join(leaves, conditions, star_catalog)
    joins = [node for node in walk(rebuilt) if isinstance(node, Join)]
    assert len(joins) == 2
    applied = {cond for join in joins for cond in join.conditions}
    # Both conditions applied somewhere (possibly with sides swapped).
    assert len(applied) == 2
    schema = derive_schema(rebuilt, star_catalog)
    assert "p_name" in schema and "st_city" in schema and "amount" in schema


def test_left_deep_join_requires_leaves(star_catalog):
    with pytest.raises(ValueError):
        left_deep_join([], [], star_catalog)
