"""Tests for the benchmark harness and reporting (fast, tiny sweeps only)."""

import pytest

from repro.bench.experiments import run_sharing_examples, run_temp_vs_perm
from repro.bench.harness import ExperimentConfig, run_figure_sweep
from repro.bench.reporting import format_comparison, format_series, format_table
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(catalog=tpcd.tpcd_catalog(scale_factor=0.05))


def test_sweep_produces_point_per_percentage(config):
    series = run_figure_sweep(
        "mini",
        "miniature sweep",
        queries.standalone_join_view(),
        config,
        update_percentages=(0.01, 0.2),
    )
    assert len(series.points) == 2
    assert series.points[0].update_percentage == 0.01
    assert all(p.greedy_cost > 0 and p.no_greedy_cost > 0 for p in series.points)
    assert series.max_ratio() >= 1.0


def test_series_rows_and_formatting(config):
    series = run_figure_sweep(
        "mini", "miniature sweep", queries.standalone_join_view(), config, (0.01,)
    )
    rows = series.as_rows()
    assert rows[0]["update_pct"] == 1.0
    text = format_series(series)
    assert "mini" in text and "update_pct" in text


def test_format_table_alignment():
    text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 3.25}], ["a", "b"])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")


def test_format_comparison():
    text = format_comparison("label", {"x": 1.23456, "y": "z"})
    assert "label" in text and "1.235" in text and "y: z" in text


def test_config_buffer_blocks_feed_cost_model():
    small = ExperimentConfig(catalog=tpcd.tpcd_catalog(0.05), buffer_blocks=100)
    assert small.cost_model().buffer.blocks == 100
    assert small.optimizer() is not None


def test_temp_vs_perm_counts_accumulate():
    result = run_temp_vs_perm(update_percentages=(0.01,), scale_factor=0.05)
    assert result.overall.total > 0
    assert result.overall.total == result.low_update.total
    assert result.high_update.total == 0


def test_sharing_examples_runs_at_small_scale():
    result = run_sharing_examples(scale_factor=0.05)
    assert result.example_3_1.unshared_cost > 0
    assert result.example_3_2_greedy <= result.example_3_2_no_greedy * 1.001
