"""Property-based tests for the multiset relation algebra (hypothesis)."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import Schema
from repro.storage.relation import Relation

SCHEMA = Schema.from_names(["k", "v"])

rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=3)),
    max_size=30,
)


def bag(rel: Relation) -> Counter:
    return rel.counter()


@given(rows, rows)
@settings(max_examples=80, deadline=None)
def test_union_counts_add(a, b):
    left, right = Relation(SCHEMA, a), Relation(SCHEMA, b)
    assert bag(left.union_all(right)) == Counter(a) + Counter(b)


@given(rows, rows)
@settings(max_examples=80, deadline=None)
def test_difference_is_counted_subtraction(a, b):
    left, right = Relation(SCHEMA, a), Relation(SCHEMA, b)
    assert bag(left.difference(right)) == Counter(a) - Counter(b)


@given(rows, rows)
@settings(max_examples=80, deadline=None)
def test_union_then_difference_restores_original(a, b):
    left, right = Relation(SCHEMA, a), Relation(SCHEMA, b)
    assert bag(left.union_all(right).difference(right)) == Counter(a)


@given(rows, rows)
@settings(max_examples=80, deadline=None)
def test_apply_delta_equals_manual_composition(a, b):
    base, delta = Relation(SCHEMA, a), Relation(SCHEMA, b)
    combined = base.apply_delta(inserts=delta, deletes=delta)
    assert bag(combined) == (Counter(a) - Counter(b)) + Counter(b)


@given(rows)
@settings(max_examples=80, deadline=None)
def test_distinct_is_idempotent_and_support_preserving(a):
    relation = Relation(SCHEMA, a)
    distinct = relation.distinct()
    assert set(distinct.rows) == set(a)
    assert max(Counter(distinct.rows).values(), default=0) <= 1
    assert distinct.distinct().same_bag(distinct)


@given(rows)
@settings(max_examples=80, deadline=None)
def test_projection_preserves_cardinality(a):
    relation = Relation(SCHEMA, a)
    assert len(relation.project(["v"])) == len(relation)


@given(rows)
@settings(max_examples=80, deadline=None)
def test_sort_is_a_permutation(a):
    relation = Relation(SCHEMA, a)
    assert relation.sorted_by(["k", "v"]).same_bag(relation)
