"""Sharding layer: partitioning, eligibility, merge kernels, static checks.

The load-bearing property throughout: partition → execute → merge is
**bag-identical** to serial execution, on both column-store backends,
including NULL shard keys, empty shards, and groups that exist only on
some shards.  The serial engine stays the oracle.
"""

import pytest

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Distinct,
    Join,
)
from repro.analysis.diagnostics import errors
from repro.analysis.planlint import verify_shard_plan
from repro.catalog.schema import Schema
from repro.engine.executor import evaluate
from repro.parallel.shard import (
    MERGE_AGGREGATE_INPUT,
    MERGE_CONCAT,
    MERGE_REAGGREGATE,
    MERGE_SERIAL,
    ShardPlan,
    ShardSpec,
    merge_concat,
    merge_shards,
    partition_relation,
    plan_shards,
    shard_database,
)
from repro.storage.columns import forced_backend, numpy_enabled
from repro.storage.relation import Relation
from repro.workloads import queries
from repro.workloads.datagen import TpcdDataGenerator

BACKENDS = ["python"] + (["numpy"] if numpy_enabled() else [])


@pytest.fixture(params=BACKENDS)
def backend(request):
    with forced_backend(request.param):
        yield request.param


def workload_views():
    combined = {}
    combined.update(queries.standalone_join_view())
    combined.update(queries.standalone_agg_view())
    combined.update(queries.view_set_plain())
    combined.update(queries.view_set_aggregate())
    combined.update(queries.large_view_set())
    return combined


# ------------------------------------------------------------- shard assignment

def test_shard_of_is_a_pure_function_of_the_value():
    spec = ShardSpec((("t", "k"),), workers=4)
    again = ShardSpec((("t", "k"),), workers=4)
    for value in [0, 1, 7, -3, "abc", ("x", 2), 2.5]:
        assert spec.shard_of(value) == again.shard_of(value)
        assert 0 <= spec.shard_of(value) < 4


def test_shard_of_normalizes_integral_floats():
    spec = ShardSpec((("t", "k"),), workers=4)
    # 7 and 7.0 are the same key value — they must land on the same shard,
    # or a float-typed delta would miss its int-typed base rows.
    assert spec.shard_of(7) == spec.shard_of(7.0)


def test_null_keys_go_to_shard_zero():
    spec = ShardSpec((("t", "k"),), workers=4)
    assert spec.shard_of(None) == 0


def test_range_mode_uses_bounds():
    spec = ShardSpec((("t", "k"),), workers=3, mode="range", bounds=(10.0, 20.0))
    assert spec.shard_of(5) == 0
    assert spec.shard_of(10) == 1  # bisect_right: bound value moves up
    assert spec.shard_of(15) == 1
    assert spec.shard_of(99) == 2


def test_spec_validation():
    with pytest.raises(ValueError):
        ShardSpec((), workers=0)
    with pytest.raises(ValueError):
        ShardSpec((), workers=2, mode="round-robin")
    with pytest.raises(ValueError):
        ShardSpec((), workers=3, mode="range", bounds=(1.0,))


# ----------------------------------------------------------------- partitioning

def test_partition_is_exact_including_null_keys_and_empty_shards(backend):
    schema = Schema.from_names(["k", "v"])
    rows = [(0, "a"), (4, "b"), (None, "c"), (8, "d"), (None, "e"), (12, "f")]
    relation = Relation.from_trusted_rows(schema, rows, "t")
    relation.column_store()  # exercise the store-backed kernel path
    spec = ShardSpec((("t", "k"),), workers=4)
    parts = partition_relation(relation, "k", spec)
    assert len(parts) == 4
    # Every key here is ≡ 0 (mod 4) or NULL → everything lands on shard 0,
    # shards 1..3 are empty — and the union is still the exact input bag.
    assert len(parts[0]) == len(rows)
    assert all(len(part) == 0 for part in parts[1:])
    assert merge_concat(parts).same_bag(relation)


def test_partition_round_trips_the_bag(backend):
    schema = Schema.from_names(["k", "v"])
    rows = [(i % 7, i) for i in range(100)] + [(None, -1)] * 3
    relation = Relation.from_trusted_rows(schema, rows, "t")
    relation.column_store()
    for mode, bounds in (("hash", ()), ("range", (2.0, 4.0))):
        spec = ShardSpec((("t", "k"),), workers=3, mode=mode, bounds=bounds)
        parts = partition_relation(relation, "k", spec)
        assert sum(len(part) for part in parts) == len(relation)
        assert merge_concat(parts).same_bag(relation)


def test_partition_agrees_between_store_and_row_paths():
    schema = Schema.from_names(["k", "v"])
    rows = [(i, i * 10) for i in range(50)] + [(None, -1)]
    spec = ShardSpec((("t", "k"),), workers=4)
    with forced_backend("python"):
        row_backed = Relation.from_trusted_rows(schema, list(rows), "t")
        python_parts = partition_relation(row_backed, "k", spec)
    if not numpy_enabled():
        pytest.skip("numpy backend unavailable")
    with forced_backend("numpy"):
        store_backed = Relation.from_trusted_rows(schema, list(rows), "t")
        store_backed.column_store()
        numpy_parts = partition_relation(store_backed, "k", spec)
    for python_part, numpy_part in zip(python_parts, numpy_parts):
        assert python_part.same_bag(numpy_part)


# ------------------------------------------------------------------ eligibility

def test_plan_shards_on_the_workload(backend):
    spec = ShardSpec((("lineitem", "l_orderkey"), ("orders", "o_orderkey")), workers=2)
    merges = {
        name: plan_shards(expression, spec).merge
        for name, expression in workload_views().items()
    }
    # Join views concat; SUM aggregates merge at the aggregation input;
    # views over broadcast-only relations stay serial.
    assert merges["v_order_details"] == MERGE_CONCAT
    assert merges["v_revenue_by_nation"] == MERGE_AGGREGATE_INPUT
    assert merges["v05_part_supply"] == MERGE_SERIAL
    parallel = [m for m in merges.values() if m != MERGE_SERIAL]
    assert len(parallel) >= 15, merges


def test_count_min_max_aggregates_reaggregate():
    spec = ShardSpec((("lineitem", "l_orderkey"),), workers=2)
    expression = Aggregate(
        BaseRelation("lineitem"),
        ["l_orderkey"],
        [
            AggregateSpec(AggregateFunc.COUNT, None, "n"),
            AggregateSpec(AggregateFunc.MIN, "l_quantity", "lo"),
            AggregateSpec(AggregateFunc.MAX, "l_quantity", "hi"),
        ],
    )
    assert plan_shards(expression, spec).merge == MERGE_REAGGREGATE


def test_serial_fallbacks_carry_reasons():
    spec = ShardSpec((("lineitem", "l_orderkey"),), workers=2)
    distinct = plan_shards(Distinct(BaseRelation("lineitem")), spec)
    assert distinct.merge == MERGE_SERIAL
    assert any("Distinct" in reason for reason in distinct.reasons)

    self_join = plan_shards(
        Join(
            BaseRelation("lineitem"),
            BaseRelation("lineitem"),
            [("l_orderkey", "l_orderkey")],
        ),
        spec,
    )
    assert self_join.merge == MERGE_SERIAL
    assert any("more than once" in reason for reason in self_join.reasons)

    broadcast_only = plan_shards(BaseRelation("nation"), spec)
    assert broadcast_only.merge == MERGE_SERIAL
    assert any("no sharded relation" in reason for reason in broadcast_only.reasons)


def test_non_co_partitioned_join_falls_back():
    # orders is partitioned on o_custkey but joined to lineitem on the
    # order key — the join is not shard-local, so the plan must be serial.
    spec = ShardSpec((("lineitem", "l_orderkey"), ("orders", "o_custkey")), workers=2)
    expression = queries.chain_join(["lineitem", "orders"])
    plan = plan_shards(expression, spec)
    assert plan.merge == MERGE_SERIAL
    assert any("partition keys" in reason for reason in plan.reasons)


# ----------------------------------------------- partition → execute → merge

@pytest.fixture(scope="module")
def tpcd_database():
    return TpcdDataGenerator(scale_factor=0.001, seed=3).populate()


def _parallel_oracle_check(database, spec, expression):
    plan = plan_shards(expression, spec)
    assert plan.parallel, plan.reasons
    serial = evaluate(expression, database)
    parts = [
        evaluate(plan.shard_expression, shard_database(database, spec, shard))
        for shard in range(spec.workers)
    ]
    merged = merge_shards(plan, parts)
    assert merged.same_bag(serial), "parallel result diverged from serial"
    assert merged.schema.names == serial.schema.names


def test_every_parallel_workload_view_matches_serial(backend, tpcd_database):
    spec = ShardSpec(
        (("lineitem", "l_orderkey"), ("orders", "o_orderkey")), workers=3
    )
    for name, expression in workload_views().items():
        plan = plan_shards(expression, spec)
        if not plan.parallel:
            continue
        _parallel_oracle_check(tpcd_database, spec, expression)


def test_range_partitioning_matches_serial(backend, tpcd_database):
    spec = ShardSpec.for_database(tpcd_database, workers=3, mode="range")
    assert spec.mode == "range" and len(spec.bounds) == 2
    for expression in (
        queries.standalone_join_view()["v_order_details"],
        queries.standalone_agg_view()["v_revenue_by_nation"],
    ):
        _parallel_oracle_check(tpcd_database, spec, expression)


def test_groups_present_on_a_single_shard_survive_the_merge(backend):
    # Aggregate over a relation where whole groups live on one shard and
    # other shards are empty: re-aggregation must keep exactly the serial
    # group set — no vanished groups, no resurrected ones.
    from repro.catalog.catalog import Catalog
    from repro.catalog.schema import TableDef
    from repro.engine.database import Database

    schema = Schema.from_names(["k", "q"])
    rows = [(0, 1), (0, 2), (1, 5), (2, 7), (2, 7), (5, 9)]
    database = Database(Catalog())
    database.create_table(TableDef("t", schema), rows)
    spec = ShardSpec((("t", "k"),), workers=4)
    expression = Aggregate(
        BaseRelation("t"),
        ["k"],
        [
            AggregateSpec(AggregateFunc.COUNT, None, "n"),
            AggregateSpec(AggregateFunc.MIN, "q", "lo"),
        ],
    )
    _parallel_oracle_check(database, spec, expression)


# --------------------------------------------------------------- static checks

def test_verify_shard_plan_clean_on_real_plans(tpcd_database):
    spec = ShardSpec((("lineitem", "l_orderkey"), ("orders", "o_orderkey")), workers=2)
    for expression in workload_views().values():
        plan = plan_shards(expression, spec)
        assert errors(verify_shard_plan(plan, spec, tpcd_database)) == []


def test_verify_shard_plan_flags_merge_shape_mismatch(tpcd_database):
    spec = ShardSpec((("lineitem", "l_orderkey"),), workers=2)
    expression = queries.standalone_agg_view()["v_revenue_by_nation"]
    # A SUM aggregate wrongly planned as concat: P010.
    bad = ShardPlan(expression, expression, ("lineitem",), MERGE_CONCAT)
    codes = [d.code for d in errors(verify_shard_plan(bad, spec, tpcd_database))]
    assert "REPRO-P010" in codes


def test_verify_shard_plan_flags_non_co_partitioned(tpcd_database):
    spec = ShardSpec((("lineitem", "l_orderkey"), ("orders", "o_custkey")), workers=2)
    expression = queries.chain_join(["lineitem", "orders"])
    # Force a (wrong) parallel plan past the eligibility analysis: P011.
    bad = ShardPlan(expression, expression, ("lineitem", "orders"), MERGE_CONCAT)
    codes = [d.code for d in errors(verify_shard_plan(bad, spec, tpcd_database))]
    assert "REPRO-P011" in codes


def test_verify_shard_plan_flags_missing_partition_key(tpcd_database):
    spec = ShardSpec((("lineitem", "no_such_column"),), workers=2)
    expression = queries.standalone_join_view()["v_order_details"]
    plan = ShardPlan(expression, expression, ("lineitem",), MERGE_CONCAT)
    codes = [d.code for d in errors(verify_shard_plan(plan, spec, tpcd_database))]
    assert "REPRO-P012" in codes
