"""Tests for the TPC-D workload substrate (schema, data, updates, view sets)."""

import pytest

from repro.algebra.expressions import Aggregate, base_relations
from repro.algebra.schema_derivation import derive_schema
from repro.engine.executor import evaluate
from repro.maintenance.update_spec import UpdateSpec
from repro.workloads import datagen, queries, tpcd, updategen


# ----------------------------------------------------------------------- tpcd

def test_catalog_contains_all_eight_tables():
    catalog = tpcd.tpcd_catalog(scale_factor=0.1)
    assert {t.name for t in catalog.tables()} == set(tpcd.BASE_CARDINALITIES)


def test_cardinalities_scale_except_fixed_tables():
    assert tpcd.cardinality("orders", 0.1) == 150_000
    assert tpcd.cardinality("lineitem", 0.1) == 600_000
    assert tpcd.cardinality("nation", 0.1) == 25
    assert tpcd.cardinality("region", 0.001) == 5


def test_database_size_near_100mb_at_paper_scale():
    size = tpcd.total_database_bytes(0.1)
    assert 60e6 < size < 160e6


def test_pk_indexes_optional():
    with_idx = tpcd.tpcd_catalog(0.01, with_pk_indexes=True)
    without_idx = tpcd.tpcd_catalog(0.01, with_pk_indexes=False)
    assert with_idx.has_index_on("orders", ["o_orderkey"])
    assert not without_idx.all_indexes()


def test_foreign_keys_declared():
    tables = tpcd.tpcd_tables()
    fk_targets = {ref_table for (_, ref_table, _) in tables["lineitem"].foreign_keys}
    assert {"orders", "part", "supplier"} <= fk_targets


def test_column_stats_have_key_distincts():
    catalog = tpcd.tpcd_catalog(0.1)
    stats = catalog.stats("orders")
    assert stats.distinct("o_orderkey") == pytest.approx(150_000)
    assert stats.distinct("o_custkey") == pytest.approx(15_000)


# -------------------------------------------------------------------- datagen

def test_generator_is_deterministic():
    rows_a = datagen.TpcdDataGenerator(scale_factor=0.0005, seed=5).generate_table("orders")
    rows_b = datagen.TpcdDataGenerator(scale_factor=0.0005, seed=5).generate_table("orders")
    assert rows_a == rows_b
    rows_c = datagen.TpcdDataGenerator(scale_factor=0.0005, seed=6).generate_table("orders")
    assert rows_a != rows_c


def test_generated_data_is_referentially_consistent(tiny_tpcd_database):
    database = tiny_tpcd_database
    customers = {row[0] for row in database.table("customer")}
    orders = database.table("orders")
    assert all(row[1] in customers for row in orders)
    order_keys = {row[0] for row in orders}
    assert all(row[0] in order_keys for row in database.table("lineitem"))


def test_generated_tables_match_schema(tiny_tpcd_database):
    for name in ["orders", "lineitem", "customer"]:
        relation = tiny_tpcd_database.table(name)
        assert len(relation.schema) == len(tpcd.tpcd_tables()[name].schema)


def test_populate_subset_of_tables():
    database = datagen.small_database(scale_factor=0.0005, tables=["region", "nation"])
    assert set(database.table_names()) == {"region", "nation"}


# ------------------------------------------------------------------ updategen

def test_update_generator_respects_fractions(tiny_tpcd_database):
    database = tiny_tpcd_database.copy()
    spec = UpdateSpec.uniform(0.2, ["orders"])
    deltas = updategen.generate_deltas(database, spec, ["orders"], seed=1)
    orders = database.table("orders")
    delta = deltas.delta("orders")
    assert len(delta.inserts) == pytest.approx(len(orders) * 0.2, abs=1)
    assert len(delta.deletes) == pytest.approx(len(orders) * 0.1, abs=1)


def test_update_generator_inserts_have_fresh_keys(tiny_tpcd_database):
    database = tiny_tpcd_database.copy()
    deltas = updategen.uniform_deltas(database, 0.3, ["customer"], seed=2)
    existing = {row[0] for row in database.table("customer")}
    new_keys = {row[0] for row in deltas.delta("customer").inserts}
    assert not (existing & new_keys)


def test_update_generator_deletes_existing_rows(tiny_tpcd_database):
    database = tiny_tpcd_database.copy()
    deltas = updategen.uniform_deltas(database, 0.3, ["customer"], seed=2)
    existing = set(database.table("customer").rows)
    assert all(row in existing for row in deltas.delta("customer").deletes)


# -------------------------------------------------------------------- queries

def test_standalone_views_touch_four_relations():
    view = queries.standalone_join_view()["v_order_details"]
    assert len(base_relations(view)) == 4
    agg = queries.standalone_agg_view()["v_revenue_by_nation"]
    assert isinstance(agg, Aggregate)


def test_view_sets_have_expected_sizes_and_sharing():
    plain = queries.view_set_plain()
    aggregate = queries.view_set_aggregate()
    large = queries.large_view_set()
    assert len(plain) == 5 and len(aggregate) == 5 and len(large) == 10
    # Figure 5's views are each joins of 3-4 relations.
    assert all(3 <= len(base_relations(v)) <= 4 for v in large.values())
    # The sets genuinely share sub-expressions (pairs with >= 2 common relations).
    shared_pairs = [
        (a, b)
        for a in plain
        for b in plain
        if a < b and len(base_relations(plain[a]) & base_relations(plain[b])) >= 2
    ]
    assert shared_pairs


def test_large_view_set_with_aggregates_variant():
    views = queries.large_view_set(with_aggregates=True)
    assert len(views) == 10
    assert any(isinstance(v, Aggregate) for v in views.values())


def test_chain_join_requires_connectable_relations():
    with pytest.raises(KeyError):
        queries.chain_join(["region", "lineitem"])
    with pytest.raises(KeyError):
        queries.join_condition("region", "lineitem")


def test_views_have_derivable_schemas():
    catalog = tpcd.tpcd_catalog(0.01)
    for name, view in {**queries.view_set_plain(), **queries.view_set_aggregate()}.items():
        schema = derive_schema(view, catalog)
        assert len(schema) > 0, name


def test_example_views_evaluable_on_generated_data(tiny_tpcd_database):
    view = queries.standalone_agg_view()["v_revenue_by_nation"]
    result = evaluate(view, tiny_tpcd_database)
    assert len(result) >= 1
    assert set(result.schema.names) == {"n_name", "revenue", "order_lines"}
