"""``tools/bench_compare.py``: timing-tree diffing used by the CI artifact step."""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "tools", "bench_compare.py"),
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def _write(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


@pytest.fixture()
def trees(tmp_path):
    old = tmp_path / "old"
    new = tmp_path / "new"
    old.mkdir()
    new.mkdir()
    _write(
        old / "BENCH_exec.json",
        {
            "timing": {"total_seconds": 4.0, "overall_speedup": 2.0},
            "points": [{"view": "v1", "timing": {"physical_seconds": 1.0}}],
        },
    )
    _write(
        new / "BENCH_exec.json",
        {
            "timing": {"total_seconds": 2.0, "overall_speedup": 3.0},
            "points": [{"view": "v1", "timing": {"physical_seconds": 0.25}}],
        },
    )
    # Present on one side only: must be ignored, not crash the diff.
    _write(old / "BENCH_orphan.json", {"timing": {"total_seconds": 1.0}})
    return old, new


def test_seconds_entries_report_speedup(trees):
    old, new = trees
    rows = {entry: ratio for entry, _, _, ratio in bench_compare.compare_trees(str(old), str(new))}
    # baseline/current for wall times: 4.0s -> 2.0s is a 2x speedup.
    assert rows["BENCH_exec.json:timing.total_seconds"] == pytest.approx(2.0)
    assert rows["BENCH_exec.json:points[0].timing.physical_seconds"] == pytest.approx(4.0)


def test_non_seconds_entries_report_change_factor(trees):
    old, new = trees
    rows = {entry: ratio for entry, _, _, ratio in bench_compare.compare_trees(str(old), str(new))}
    # current/baseline for gates and ratios: the speedup gate improved 1.5x.
    assert rows["BENCH_exec.json:timing.overall_speedup"] == pytest.approx(1.5)


def test_orphan_files_are_skipped(trees):
    old, new = trees
    entries = [entry for entry, *_ in bench_compare.compare_trees(str(old), str(new))]
    assert not any("orphan" in entry for entry in entries)


def test_single_file_arguments(trees):
    old, new = trees
    rows = bench_compare.compare_trees(
        str(old / "BENCH_exec.json"), str(new / "BENCH_exec.json")
    )
    assert len(rows) == 3


def test_main_prints_table_and_geomean(trees, capsys):
    old, new = trees
    assert bench_compare.main([str(old), str(new)]) == 0
    out = capsys.readouterr().out
    assert "geometric-mean speedup" in out
    assert "BENCH_exec.json:timing.total_seconds" in out


def test_main_fails_without_overlap(tmp_path, capsys):
    a = tmp_path / "a"
    b = tmp_path / "b"
    a.mkdir()
    b.mkdir()
    _write(a / "BENCH_only_a.json", {"timing": {"total_seconds": 1.0}})
    _write(b / "BENCH_only_b.json", {"timing": {"total_seconds": 1.0}})
    assert bench_compare.main([str(a), str(b)]) == 1


def test_fail_under_passes_when_geomean_clears_floor(trees):
    old, new = trees
    # The fixture's wall-clock entries speed up 2x and 4x (geomean ~2.83x).
    assert bench_compare.main([str(old), str(new), "--fail-under", "2.0"]) == 0


def test_fail_under_fails_on_regression(trees, capsys):
    old, new = trees
    assert bench_compare.main([str(old), str(new), "--fail-under", "3.0"]) == 1
    err = capsys.readouterr().err
    assert "below the --fail-under floor" in err


def test_fail_under_without_wall_clock_entries_is_an_error(tmp_path, capsys):
    a = tmp_path / "a"
    b = tmp_path / "b"
    a.mkdir()
    b.mkdir()
    # Shared timing entries exist, but none of them are wall times — a gate
    # over zero *_seconds entries must not vacuously pass.
    _write(a / "BENCH_gate.json", {"timing": {"overall_speedup": 2.0}})
    _write(b / "BENCH_gate.json", {"timing": {"overall_speedup": 2.0}})
    assert bench_compare.main([str(a), str(b)]) == 0
    assert bench_compare.main([str(a), str(b), "--fail-under", "0.5"]) == 1
    assert "no wall-clock entries" in capsys.readouterr().err


def test_ms_entries_report_speedup(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    a.mkdir()
    b.mkdir()
    # The serving benchmark's latency percentiles use the _ms spelling:
    # still wall-clock, still baseline/current.
    _write(a / "BENCH_serving.json", {"timing": {"p99_ms": 40.0, "throughput_qps": 100.0}})
    _write(b / "BENCH_serving.json", {"timing": {"p99_ms": 10.0, "throughput_qps": 150.0}})
    rows = {entry: ratio for entry, _, _, ratio in bench_compare.compare_trees(str(a), str(b))}
    assert rows["BENCH_serving.json:timing.p99_ms"] == pytest.approx(4.0)
    # Throughput is not a wall time: plain change factor.
    assert rows["BENCH_serving.json:timing.throughput_qps"] == pytest.approx(1.5)


def test_sub_millisecond_cells_excluded_from_gate(tmp_path, capsys):
    a = tmp_path / "a"
    b = tmp_path / "b"
    a.mkdir()
    b.mkdir()
    # p50 regresses 9x but both sides are sub-millisecond — pure scheduler
    # jitter, must not fail the gate.  The honest multi-second entry rules.
    _write(
        a / "BENCH_serving.json",
        {"timing": {"p50_ms": 0.1, "elapsed_seconds": 4.0}},
    )
    _write(
        b / "BENCH_serving.json",
        {"timing": {"p50_ms": 0.9, "elapsed_seconds": 4.0}},
    )
    assert bench_compare.main([str(a), str(b), "--fail-under", "0.8"]) == 0
    out = capsys.readouterr().out
    assert "1 sub-millisecond entry excluded from the gate" in out
    # The excluded cell is still printed, marked with ~.
    assert "p50_ms" in out
    geomean_line = [line for line in out.splitlines() if "geometric-mean" in line]
    assert "1 timing entries" in geomean_line[0]


def test_sub_millisecond_floor_uses_the_key_unit(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    a.mkdir()
    b.mkdir()
    # 0.5 in _seconds is 500ms (gated); 0.5 in _ms is half a millisecond
    # (excluded).  Same number, different unit, different verdict.
    _write(a / "BENCH_x.json", {"timing": {"p50_ms": 0.5, "run_seconds": 0.5}})
    _write(b / "BENCH_x.json", {"timing": {"p50_ms": 0.5, "run_seconds": 0.1}})
    assert bench_compare.main([str(a), str(b), "--fail-under", "0.8"]) == 0
    assert bench_compare._sub_millisecond("timing.p50_ms", 0.5, 0.5)
    assert not bench_compare._sub_millisecond("timing.run_seconds", 0.5, 0.1)


def test_gate_passes_loudly_when_everything_is_sub_millisecond(tmp_path, capsys):
    a = tmp_path / "a"
    b = tmp_path / "b"
    a.mkdir()
    b.mkdir()
    _write(a / "BENCH_tiny.json", {"timing": {"p50_ms": 0.2}})
    _write(b / "BENCH_tiny.json", {"timing": {"p50_ms": 0.4}})
    assert bench_compare.main([str(a), str(b), "--fail-under", "0.8"]) == 0
    assert "nothing to" in capsys.readouterr().err
