"""Snapshot isolation: versioned COW view snapshots and pinned readers.

The unit half exercises :class:`~repro.serving.SnapshotManager` mechanics
directly (publish / pin / retire accounting).  The property half is the
serving layer's core guarantee, end to end: a reader pinned at version *v*
keeps observing bag-identical view contents no matter how many refresh
commits land concurrently — under both column backends and under the
``REPRO_WORKERS=2`` sharded executor.
"""

import pytest

from repro import Q, Warehouse, WarehouseConfig
from repro.catalog.schema import Schema
from repro.serving import SnapshotError, SnapshotManager
from repro.storage.columns import available_backends, forced_backend
from repro.storage.relation import Relation

SCHEMA = Schema.from_names(["k", "v"])
BACKENDS = available_backends()


def rel(rows):
    return Relation(SCHEMA, rows)


# ------------------------------------------------------------------ mechanics

def test_pin_before_first_publish_raises():
    manager = SnapshotManager()
    with pytest.raises(SnapshotError, match="no snapshot published"):
        manager.pin()
    assert manager.current_version == 0
    assert manager.current_round == 0


def test_publish_assigns_monotonic_versions_and_rounds():
    manager = SnapshotManager()
    assert manager.publish({"v": rel([(1, 1)])}, as_of_round=0) == 1
    assert manager.publish({"v": rel([(1, 1), (2, 2)])}, as_of_round=2) == 2
    assert manager.current_version == 2
    assert manager.current_round == 2


def test_pinned_handle_is_immune_to_later_publishes():
    manager = SnapshotManager()
    first = rel([(1, 1)])
    manager.publish({"v": first}, as_of_round=0)
    handle = manager.pin()
    manager.publish({"v": rel([(9, 9)])}, as_of_round=1)
    manager.publish({"v": rel([(8, 8)])}, as_of_round=2)
    assert handle.version == 1
    assert handle.as_of_round == 0
    assert handle.view("v") is first
    handle.close()
    fresh = manager.pin()
    assert fresh.version == 3
    assert fresh.view("v").rows == [(8, 8)]
    fresh.close()


def test_unpinned_superseded_version_is_retired_immediately():
    manager = SnapshotManager()
    manager.publish({"v": rel([(1, 1)])}, as_of_round=0)
    manager.publish({"v": rel([(2, 2)])}, as_of_round=1)
    stats = manager.stats()
    assert stats.published == 2
    assert stats.retired == 1
    assert stats.live_versions == 1


def test_pinned_version_survives_until_last_reader_unpins():
    manager = SnapshotManager()
    manager.publish({"v": rel([(1, 1)])}, as_of_round=0)
    first = manager.pin()
    second = manager.pin()
    manager.publish({"v": rel([(2, 2)])}, as_of_round=1)
    assert manager.stats().live_versions == 2
    assert manager.stats().pinned_readers == 2
    first.close()
    assert manager.stats().live_versions == 2, "one reader still pinned"
    second.close()
    stats = manager.stats()
    assert stats.live_versions == 1
    assert stats.retired == 1
    assert stats.pinned_readers == 0


def test_closed_handle_refuses_reads_and_close_is_idempotent():
    manager = SnapshotManager()
    manager.publish({"v": rel([(1, 1)])}, as_of_round=0)
    with manager.pin() as handle:
        assert not handle.closed
        assert handle.view_names == ["v"]
    assert handle.closed
    handle.close()  # idempotent — must not double-unpin
    with pytest.raises(SnapshotError, match="closed"):
        handle.view("v")
    assert manager.stats().pinned_readers == 0


def test_unknown_view_through_handle_names_the_served_views():
    manager = SnapshotManager()
    manager.publish({"v": rel([])}, as_of_round=0)
    with manager.pin() as handle:
        with pytest.raises(SnapshotError, match="does not serve view 'nope'"):
            handle.view("nope")


def test_publish_event_wakes_blocked_waiters():
    manager = SnapshotManager()
    manager.publish({"v": rel([])}, as_of_round=0)
    with manager.published_event:
        manager_version = manager._current.version
        assert manager_version == 1
    manager.publish({"v": rel([])}, as_of_round=1)
    with manager.published_event:
        # wait() with a timeout returns promptly since nothing is pending;
        # the interesting part — notify on publish — is covered end-to-end
        # by the block-policy serving tests.
        manager.published_event.wait(timeout=0.001)
    assert manager.current_version == 2


# ------------------------------------------------- pinned-reader bag identity

def serving_warehouse(workers):
    wh = Warehouse(WarehouseConfig.profile("fast", workers=workers))
    wh.load(scale=0.05)
    wh.load_data(scale=0.002)
    wh.define_view(
        "v_rev",
        Q.table("lineitem").join("orders").join("customer").join("nation")
        .group_by("n_name")
        .sum("l_extendedprice", "revenue"),
    )
    wh.optimize()
    wh.apply(0.0)
    return wh


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", [1, 2])
def test_pinned_reader_is_bag_identical_across_refresh_commits(backend, workers):
    """The serving layer's core property, per backend and worker count.

    A reader pins version *v*, remembers the exact bag it saw, and keeps
    re-reading through the handle while refresh commits publish newer
    versions concurrently.  Every re-read must be bag-identical to the
    remembered contents, and the final unpinned read must differ (the
    stream really did change the view).
    """
    with forced_backend(backend):
        wh = serving_warehouse(workers)
        with wh.serve(read_policy="serve-stale") as session:
            pinned = session.pin()
            baseline = Relation(pinned.view("v_rev").schema, pinned.view("v_rev").rows)
            version = pinned.version
            for _ in range(3):
                session.ingest(0.02)
                session.flush(timeout=60.0)
                assert session.current_version > version
                observed = pinned.view("v_rev")
                assert observed.same_bag(baseline), (
                    "a pinned reader observed view contents change under it"
                )
                assert pinned.version == version
            fresh = session.query("v_rev")
            assert fresh.version > version
            assert not fresh.relation.same_bag(baseline), (
                "three churn rounds left the aggregate view unchanged — the "
                "property test is not exercising refresh"
            )
            pinned.close()
