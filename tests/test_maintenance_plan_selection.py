"""Tests for the NoGreedy baseline (per-view recompute vs incremental choice)."""

import pytest

from repro.maintenance.cost_engine import MaintenanceCostEngine
from repro.maintenance.diff_dag import ResultKey
from repro.maintenance.plan_selection import select_maintenance_plan
from repro.maintenance.update_spec import UpdateSpec
from repro.optimizer.dag_builder import build_dag
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def catalog():
    return tpcd.tpcd_catalog(scale_factor=0.1)


def build_plan(catalog, views, percentage):
    from repro.algebra.expressions import base_relations

    dag = build_dag(views, catalog)
    relations = sorted({r for e in views.values() for r in base_relations(e)})
    engine = MaintenanceCostEngine(dag, catalog, UpdateSpec.uniform(percentage, relations))
    engine.set_materialized(ResultKey(dag.roots[name].id, 0) for name in views)
    return select_maintenance_plan(engine, {name: dag.roots[name].id for name in views})


def test_decision_per_view(catalog):
    plan = build_plan(catalog, queries.view_set_plain(), 0.05)
    assert len(plan.decisions) == 5
    names = {d.view for d in plan.decisions}
    assert names == set(queries.view_set_plain())


def test_strategy_picks_cheaper_side(catalog):
    plan = build_plan(catalog, queries.standalone_agg_view(), 0.01)
    decision = plan.decision_for("v_revenue_by_nation")
    assert decision.strategy == "incremental"
    assert decision.cost == min(decision.recompute_cost, decision.incremental_cost)


def test_high_update_rate_prefers_recompute(catalog):
    plan = build_plan(catalog, queries.standalone_join_view(), 0.8)
    assert plan.decision_for("v_order_details").strategy == "recompute"


def test_total_cost_positive_and_counts_consistent(catalog):
    plan = build_plan(catalog, queries.view_set_plain(), 0.1)
    assert plan.total_cost > 0
    counts = plan.counts()
    assert counts["recompute"] + counts["incremental"] == 5


def test_unknown_view_raises(catalog):
    plan = build_plan(catalog, queries.standalone_join_view(), 0.1)
    with pytest.raises(KeyError):
        plan.decision_for("nope")
