"""Unit tests for schema and statistics derivation over expressions."""

import pytest

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Difference,
    Distinct,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import eq, lt
from repro.algebra.schema_derivation import derive_schema, derive_stats, predicate_selectivity


def sales_products_join():
    return Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")])


def test_base_relation_schema_and_stats(star_catalog):
    schema = derive_schema(BaseRelation("sales"), star_catalog)
    stats = derive_stats(BaseRelation("sales"), star_catalog)
    assert "amount" in schema
    assert stats.cardinality == 6.0


def test_join_schema_concatenates(star_catalog):
    schema = derive_schema(sales_products_join(), star_catalog)
    assert len(schema) == len(derive_schema(BaseRelation("sales"), star_catalog)) + len(
        derive_schema(BaseRelation("products"), star_catalog)
    )


def test_join_cardinality_foreign_key(star_catalog):
    stats = derive_stats(sales_products_join(), star_catalog)
    # Every sale matches exactly one product.
    assert stats.cardinality == pytest.approx(6.0)


def test_select_schema_unchanged_and_cardinality_reduced(star_catalog):
    expression = Select(BaseRelation("sales"), eq("product_id", 10))
    assert derive_schema(expression, star_catalog).names == derive_schema(
        BaseRelation("sales"), star_catalog
    ).names
    stats = derive_stats(expression, star_catalog)
    assert stats.cardinality == pytest.approx(2.0)


def test_project_schema_and_width(star_catalog):
    expression = Project(BaseRelation("sales"), ["sale_id", "amount"])
    schema = derive_schema(expression, star_catalog)
    assert schema.names == ("sale_id", "amount")
    stats = derive_stats(expression, star_catalog)
    assert stats.tuple_width == schema.tuple_width
    assert stats.cardinality == 6.0


def test_aggregate_schema_and_group_count(star_catalog):
    expression = Aggregate(
        BaseRelation("sales"),
        ["product_id"],
        [AggregateSpec(AggregateFunc.SUM, "amount", "total"), AggregateSpec(AggregateFunc.COUNT, None, "n")],
    )
    schema = derive_schema(expression, star_catalog)
    assert schema.names == ("product_id", "total", "n")
    stats = derive_stats(expression, star_catalog)
    assert stats.cardinality == pytest.approx(3.0)


def test_scalar_aggregate_has_one_group(star_catalog):
    expression = Aggregate(BaseRelation("sales"), [], [AggregateSpec(AggregateFunc.COUNT, None, "n")])
    assert derive_stats(expression, star_catalog).cardinality == 1.0


def test_union_difference_distinct_stats(star_catalog):
    sales = BaseRelation("sales")
    union = UnionAll([sales, sales])
    assert derive_stats(union, star_catalog).cardinality == 12.0
    difference = Difference(union, sales)
    assert derive_stats(difference, star_catalog).cardinality == pytest.approx(6.0)
    distinct = Distinct(BaseRelation("products"))
    assert derive_stats(distinct, star_catalog).cardinality <= 3.0


def test_predicate_selectivity_combines_conjuncts(star_catalog):
    stats = derive_stats(BaseRelation("sales"), star_catalog)
    from repro.algebra.predicates import And

    predicate = And([eq("product_id", 10), eq("store_id", 100)])
    assert predicate_selectivity(predicate, stats) == pytest.approx((1 / 3) * (1 / 3))


def test_unknown_expression_type_raises(star_catalog):
    class Weird:  # not an Expression
        pass

    with pytest.raises(TypeError):
        derive_schema(Weird(), star_catalog)  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        derive_stats(Weird(), star_catalog)  # type: ignore[arg-type]
