"""End-to-end integration: optimize a workload, then execute the chosen plan.

This is the closed loop the paper itself could not run: the optimizer's
decisions (which extra results to materialize temporarily, which views to
refresh incrementally vs by recomputation) are carried out by the executable
refresh engine against generated TPC-D data, and the refreshed views are
verified against recomputation.
"""

import pytest

from repro.engine.executor import evaluate
from repro.maintenance.maintainer import ViewRefresher
from repro.maintenance.optimizer import ViewMaintenanceOptimizer
from repro.maintenance.update_spec import UpdateSpec
from repro.workloads import queries, tpcd
from repro.workloads.updategen import generate_deltas


VIEW_RELATIONS = ["customer", "lineitem", "nation", "orders", "region", "supplier"]


@pytest.fixture(scope="module")
def workload():
    return {
        "v_order_lines": queries.chain_join(["lineitem", "orders", "customer"]),
        "v_order_nations": queries.chain_join(["lineitem", "orders", "customer", "nation"]),
        "v_revenue_by_nation": queries.standalone_agg_view()["v_revenue_by_nation"],
        "v_supplier_lines": queries.chain_join(["lineitem", "supplier", "nation"]),
    }


def test_optimize_then_execute_refresh(tiny_tpcd_database, workload):
    database = tiny_tpcd_database.copy()

    # 1. Optimize against the paper-scale catalog (statistics only).
    optimizer = ViewMaintenanceOptimizer(tpcd.tpcd_catalog(scale_factor=0.1))
    spec = UpdateSpec.uniform(0.05)
    greedy = optimizer.optimize(workload, spec)
    no_greedy = optimizer.no_greedy(workload, spec)
    assert greedy.total_cost <= no_greedy.total_cost + 1e-9

    # 2. Translate the per-view decisions into an executable refresh.
    recompute = [d.view for d in greedy.plan.decisions if d.strategy == "recompute"]
    refresher = ViewRefresher(database, workload, recompute_views=recompute)
    refresher.initialize_views()

    # 3. Apply a generated update batch and refresh.
    deltas = generate_deltas(database, spec.restricted_to(VIEW_RELATIONS), VIEW_RELATIONS, seed=17)
    report = refresher.refresh(deltas)

    # 4. Every view matches recomputation on the updated database.
    verification = refresher.verify_against_recomputation()
    assert all(verification.values()), f"diverged: {verification}"
    assert report.total_changes() > 0 or report.recomputed_views


def test_greedy_selections_are_executable_as_temporaries(tiny_tpcd_database, workload):
    """Full results selected by Greedy can be materialized and reused at run time."""
    database = tiny_tpcd_database.copy()
    optimizer = ViewMaintenanceOptimizer(tpcd.tpcd_catalog(scale_factor=0.1))
    spec = UpdateSpec.uniform(0.10)
    outcome = optimizer.optimize(workload, spec)

    # Map selected full results back to logical expressions via the DAG.
    temporaries = {}
    if outcome.selection is not None:
        for chosen in outcome.selection.selected_results():
            node = outcome.dag.node(chosen.candidate.node_id)
            if chosen.candidate.key is not None and chosen.candidate.key.is_full:
                temporaries[f"tmp_e{node.id}"] = node.expression

    refresher = ViewRefresher(database, workload, temporary_subexpressions=temporaries)
    refresher.initialize_views()
    deltas = generate_deltas(database, spec.restricted_to(VIEW_RELATIONS), VIEW_RELATIONS, seed=23)
    refresher.refresh(deltas)
    assert all(refresher.verify_against_recomputation().values())


def test_view_contents_change_when_updates_arrive(tiny_tpcd_database, workload):
    database = tiny_tpcd_database.copy()
    refresher = ViewRefresher(database, {"v_order_lines": workload["v_order_lines"]})
    refresher.initialize_views()
    before = len(database.view("v_order_lines"))
    deltas = generate_deltas(
        database, UpdateSpec.uniform(0.3, ["lineitem"]), ["lineitem"], seed=9
    )
    refresher.refresh(deltas)
    after = len(database.view("v_order_lines"))
    assert after != before
    assert database.view("v_order_lines").same_bag(evaluate(workload["v_order_lines"], database))
