"""Unit tests for the predicate AST."""

import pytest

from repro.algebra.predicates import (
    And,
    Comparison,
    Not,
    Or,
    TruePredicate,
    col,
    conjoin,
    conjuncts,
    eq,
    ge,
    gt,
    le,
    lit,
    lt,
    ne,
    range_subsumes,
)
from repro.catalog.schema import Schema

SCHEMA = Schema.from_names(["a", "b"])


def test_comparison_evaluation():
    assert eq("a", 1).evaluate((1, 2), SCHEMA)
    assert not eq("a", 1).evaluate((2, 2), SCHEMA)
    assert lt("a", "b").evaluate((1, 2), SCHEMA)
    assert ge("b", 2).evaluate((1, 2), SCHEMA)
    assert ne("a", "b").evaluate((1, 2), SCHEMA)
    assert not gt("a", "b").evaluate((1, 2), SCHEMA)
    assert le("a", 1).evaluate((1, 2), SCHEMA)


def test_null_operands_evaluate_false():
    assert not eq("a", 1).evaluate((None, 2), SCHEMA)


def test_unknown_operator_rejected():
    with pytest.raises(ValueError):
        Comparison("~", col("a"), lit(1))


def test_equality_canonical_is_symmetric():
    assert eq("a", "b").canonical() == eq("b", "a").canonical()
    assert eq("a", "b") == eq("b", "a")
    assert hash(eq("a", "b")) == hash(eq("b", "a"))


def test_literal_first_range_comparison_is_flipped():
    assert lt(5, "a").canonical() == gt("a", 5).canonical()


def test_is_equijoin():
    assert eq("a", "b").is_equijoin
    assert not eq("a", 5).is_equijoin


def test_negate():
    assert lt("a", 5).negate().op == ">="
    assert eq("a", 5).negate().op == "!="


def test_and_flattens_sorts_and_drops_true():
    combined = And([eq("a", 1), And([eq("b", 2), TruePredicate()])])
    assert len(combined.parts) == 2
    assert combined.evaluate((1, 2), SCHEMA)
    assert not combined.evaluate((1, 3), SCHEMA)
    # Canonical form is order independent.
    assert And([eq("a", 1), eq("b", 2)]) == And([eq("b", 2), eq("a", 1)])


def test_or_and_not_evaluation():
    disjunction = Or([eq("a", 1), eq("a", 2)])
    assert disjunction.evaluate((2, 0), SCHEMA)
    assert not disjunction.evaluate((3, 0), SCHEMA)
    assert Not(eq("a", 1)).evaluate((2, 0), SCHEMA)


def test_columns_collection():
    predicate = And([eq("a", 1), lt("b", "a")])
    assert predicate.columns() == frozenset({"a", "b"})


def test_conjuncts_and_conjoin_roundtrip():
    parts = [eq("a", 1), lt("b", 5)]
    combined = conjoin(parts)
    assert set(conjuncts(combined)) == set(parts)
    assert conjuncts(None) == []
    assert conjuncts(TruePredicate()) == []
    assert isinstance(conjoin([]), TruePredicate)
    assert conjoin([eq("a", 1)]) == eq("a", 1)


def test_true_predicate():
    assert TruePredicate().evaluate((1, 2), SCHEMA)
    assert TruePredicate().columns() == frozenset()


def test_range_subsumption_same_direction():
    assert range_subsumes(lt("a", 10), lt("a", 5))
    assert not range_subsumes(lt("a", 5), lt("a", 10))
    assert range_subsumes(gt("a", 5), gt("a", 10))


def test_range_subsumption_equality_point():
    assert range_subsumes(lt("a", 10), eq("a", 3))
    assert not range_subsumes(lt("a", 10), eq("a", 30))


def test_range_subsumption_different_columns_or_shapes():
    assert not range_subsumes(lt("a", 10), lt("b", 5))
    assert not range_subsumes(eq("a", "b"), lt("a", 5))
