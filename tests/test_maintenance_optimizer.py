"""Tests for the high-level ViewMaintenanceOptimizer facade."""

import pytest

from repro.maintenance.optimizer import ViewMaintenanceOptimizer
from repro.maintenance.update_spec import UpdateSpec
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def catalog():
    return tpcd.tpcd_catalog(scale_factor=0.1)


@pytest.fixture(scope="module")
def optimizer(catalog):
    return ViewMaintenanceOptimizer(catalog)


def test_no_greedy_reports_per_view_decisions(optimizer):
    result = optimizer.no_greedy(queries.view_set_plain(), UpdateSpec.uniform(0.05))
    assert result.selection is None
    assert len(result.plan.decisions) == 5
    assert result.total_cost == pytest.approx(result.plan.total_cost)


def test_greedy_beats_or_matches_no_greedy(optimizer):
    views = queries.view_set_plain()
    spec = UpdateSpec.uniform(0.05)
    no_greedy = optimizer.no_greedy(views, spec)
    greedy = optimizer.optimize(views, spec)
    assert greedy.total_cost <= no_greedy.total_cost + 1e-9
    assert greedy.selection is not None
    assert greedy.optimization_seconds >= 0


def test_greedy_benefit_largest_at_low_update_percentage(optimizer):
    views = queries.standalone_join_view()
    low = optimizer.compare(views, UpdateSpec.uniform(0.01))
    high = optimizer.compare(views, UpdateSpec.uniform(0.8))
    low_ratio = low["no_greedy"].total_cost / low["greedy"].total_cost
    high_ratio = high["no_greedy"].total_cost / max(high["greedy"].total_cost, 1e-9)
    assert low_ratio >= high_ratio
    assert low_ratio > 1.5


def test_indexes_selected_when_missing(catalog):
    bare_catalog = tpcd.tpcd_catalog(scale_factor=0.1, with_pk_indexes=False)
    optimizer = ViewMaintenanceOptimizer(bare_catalog)
    result = optimizer.optimize(queries.standalone_join_view(), UpdateSpec.uniform(0.01))
    assert result.indexes, "Greedy should pick indexes when none exist"


def test_extra_materializations_listing(optimizer):
    result = optimizer.optimize(queries.view_set_aggregate(), UpdateSpec.uniform(0.2))
    assert result.extra_materializations == len(result.permanent_results) + len(
        result.temporary_results
    )
    for label in result.indexes:
        assert label.startswith("index(")


def test_max_selections_is_respected(optimizer):
    result = optimizer.optimize(
        queries.view_set_plain(), UpdateSpec.uniform(0.05), max_selections=1
    )
    assert len(result.selection.selections) <= 1


def test_differential_candidates_can_be_enabled(catalog):
    optimizer = ViewMaintenanceOptimizer(catalog, include_differential_candidates=True)
    result = optimizer.optimize(queries.view_set_plain(), UpdateSpec.uniform(0.05))
    baseline = ViewMaintenanceOptimizer(catalog).optimize(
        queries.view_set_plain(), UpdateSpec.uniform(0.05)
    )
    # More candidate types can only help (or tie), never hurt.
    assert result.total_cost <= baseline.total_cost * 1.01


def test_plan_reflects_final_configuration(optimizer):
    views = queries.standalone_agg_view()
    result = optimizer.optimize(views, UpdateSpec.uniform(0.01))
    decision = result.plan.decision_for("v_revenue_by_nation")
    assert decision.strategy == "incremental"
    assert decision.cost <= decision.recompute_cost
