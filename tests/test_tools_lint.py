"""Tests for the repo invariant linter (``tools/lint_invariants.py``).

Each check is exercised on a small synthetic file (positive and negative),
the inline suppression syntax is verified, and — the load-bearing
assertion — the repository itself lints clean, so the CI lint job cannot
land red.
"""

import importlib.util
from pathlib import Path

import pytest

from repro.analysis import CODES

REPO_ROOT = Path(__file__).resolve().parents[1]
LINT_PATH = REPO_ROOT / "tools" / "lint_invariants.py"

_spec = importlib.util.spec_from_file_location("lint_invariants", LINT_PATH)
lint = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(lint)


def lint_source(tmp_path, source, relative="pkg/module.py"):
    """Lint ``source`` as if it lived at ``relative`` inside a repo."""
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return lint.lint_file(path)


def codes_of(findings):
    return [f.code for f in findings]


# ------------------------------------------------------------------- checks

def test_l001_numpy_import_confined_to_columns(tmp_path):
    source = "import numpy\n\nprint(numpy.zeros(3))\n"
    findings = lint_source(tmp_path, source, "repro/engine/kernels.py")
    assert "REPRO-L001" in codes_of(findings)
    # The one sanctioned module is exempt.
    assert codes_of(
        lint_source(tmp_path, source, "repro/storage/columns.py")
    ) == []


def test_l002_wall_clock_confined_to_timing_writers(tmp_path):
    source = "import time\n\nprint(time.perf_counter())\n"
    findings = lint_source(tmp_path, source, "repro/engine/operators.py")
    assert codes_of(findings) == ["REPRO-L002"]
    assert codes_of(lint_source(tmp_path, source, "repro/bench/harness.py")) == []


def test_l002_time_time_banned_even_in_allowlist(tmp_path):
    source = "import time\n\nprint(time.time())\n"
    findings = lint_source(tmp_path, source, "repro/bench/harness.py")
    assert codes_of(findings) == ["REPRO-L002"]
    assert "perf_counter" in findings[0].message


def test_l003_relation_mutation_confined(tmp_path):
    source = (
        "def corrupt(relation, row):\n"
        "    relation._rows = [row]\n"
        "    relation.rows.append(row)\n"
        "    relation.rows[0] = row\n"
    )
    findings = lint_source(tmp_path, source, "repro/engine/helper.py")
    assert codes_of(findings) == ["REPRO-L003"] * 3
    assert codes_of(
        lint_source(tmp_path, source, "repro/storage/relation.py")
    ) == []


def test_l004_mutable_default_argument(tmp_path):
    source = "def f(items=[]):\n    return items\n"
    findings = lint_source(tmp_path, source)
    assert codes_of(findings) == ["REPRO-L004"]
    assert codes_of(lint_source(tmp_path, "def f(items=None):\n    pass\n")) == []


def test_l005_init_requires_dunder_all(tmp_path):
    findings = lint_source(tmp_path, "from pkg.mod import thing\n", "pkg/__init__.py")
    codes = codes_of(findings)
    assert "REPRO-L005" in codes
    clean = lint_source(
        tmp_path,
        "from pkg.mod import thing\n\n__all__ = [\"thing\"]\n",
        "pkg2/__init__.py",
    )
    assert codes_of(clean) == []  # __all__ also marks the import used


def test_l006_unused_module_level_import(tmp_path):
    findings = lint_source(tmp_path, "import os\nimport sys\n\nprint(sys.argv)\n")
    assert codes_of(findings) == ["REPRO-L006"]
    assert "'os'" in findings[0].message


def test_l007_builtin_shadowing(tmp_path):
    source = "def pick(list):\n    id = 3\n    return list[id]\n"
    findings = lint_source(tmp_path, source)
    assert codes_of(findings) == ["REPRO-L007", "REPRO-L007"]


def test_l008_multiprocessing_confined_to_parallel(tmp_path):
    source = "import multiprocessing\n\nprint(multiprocessing.cpu_count())\n"
    findings = lint_source(tmp_path, source, "repro/engine/operators.py")
    assert codes_of(findings) == ["REPRO-L008"]
    # concurrent.futures counts as process-level parallelism too.
    futures = "from concurrent.futures import ProcessPoolExecutor\n\nprint(ProcessPoolExecutor)\n"
    assert "REPRO-L008" in codes_of(
        lint_source(tmp_path, futures, "repro/mqo/sharing.py")
    )
    # The parallel package is the sanctioned home.
    assert codes_of(lint_source(tmp_path, source, "repro/parallel/pool.py")) == []
    # The usual escape hatch applies.
    assert codes_of(
        lint_source(
            tmp_path,
            "import multiprocessing  # lint: allow(L008)\n\nprint(multiprocessing)\n",
            "repro/engine/operators.py",
        )
    ) == []


def test_l009_threading_confined_to_serving_and_parallel(tmp_path):
    source = "import threading\n\nprint(threading.active_count())\n"
    findings = lint_source(tmp_path, source, "repro/engine/operators.py")
    assert codes_of(findings) == ["REPRO-L009"]
    assert "repro.serving.sync" in findings[0].message
    # ``from threading import ...`` is the same violation.
    assert "REPRO-L009" in codes_of(
        lint_source(
            tmp_path,
            "from threading import Lock\n\nprint(Lock)\n",
            "repro/api/stream.py",
        )
    )
    # The two sanctioned homes are exempt.
    assert codes_of(lint_source(tmp_path, source, "repro/serving/sync.py")) == []
    assert codes_of(lint_source(tmp_path, source, "repro/parallel/pool.py")) == []
    # The usual escape hatch applies.
    assert codes_of(
        lint_source(
            tmp_path,
            "import threading  # lint: allow(L009)\n\nprint(threading)\n",
            "repro/engine/operators.py",
        )
    ) == []


def test_inline_suppression(tmp_path):
    assert codes_of(lint_source(tmp_path, "import os  # lint: allow(L006)\n")) == []
    assert codes_of(
        lint_source(tmp_path, "import os  # lint: allow(REPRO-L006)\n")
    ) == []
    # A suppression for a different code does not hide the finding.
    assert codes_of(
        lint_source(tmp_path, "import os  # lint: allow(L001)\n")
    ) == ["REPRO-L006"]


def test_syntax_errors_are_reported_not_raised(tmp_path):
    findings = lint_source(tmp_path, "def broken(:\n")
    assert codes_of(findings) == ["REPRO-L000"]


# ------------------------------------------------------------ repo-wide gate

def test_repository_lints_clean():
    findings = []
    for path in lint.iter_python_files(
        [str(REPO_ROOT / "src" / "repro"), str(REPO_ROOT / "tools")]
    ):
        findings.extend(lint.lint_file(path))
    assert findings == [], "\n".join(f.render() for f in findings)


def test_linter_codes_are_documented():
    """Every code the linter can emit appears in the shared CODES table."""
    emitted = {f"REPRO-L00{i}" for i in range(1, 10)}
    assert emitted <= set(CODES)
    for code in emitted:
        assert CODES[code], code
