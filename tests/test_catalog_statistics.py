"""Unit tests for statistics and selectivity estimation."""

import pytest

from repro.catalog.schema import Schema
from repro.catalog.statistics import (
    ColumnStats,
    TableStats,
    difference_cardinality,
    distinct_cardinality,
    estimate_group_count,
    estimate_join_cardinality,
    estimate_selectivity,
    join_selectivity,
    union_cardinality,
)
from repro.storage.relation import Relation


@pytest.fixture
def stats():
    return TableStats(
        1000.0,
        32,
        {
            "key": ColumnStats(distinct=1000, min_value=1, max_value=1000),
            "group": ColumnStats(distinct=10, min_value=0, max_value=9),
            "value": ColumnStats(distinct=100, min_value=0, max_value=100),
        },
    )


def test_size_bytes(stats):
    assert stats.size_bytes == 1000 * 32


def test_distinct_clamped_by_cardinality():
    s = TableStats(5.0, 8, {"a": ColumnStats(distinct=100)})
    assert s.distinct("a") == 5.0


def test_distinct_fallback_without_stats(stats):
    # Unknown column: falls back to a fraction of the cardinality.
    assert stats.distinct("unknown") == pytest.approx(100.0)


def test_with_cardinality_clamps_column_distincts(stats):
    reduced = stats.with_cardinality(5.0)
    assert reduced.cardinality == 5.0
    assert reduced.distinct("key") == 5.0


def test_scaled_scales_cardinality(stats):
    assert stats.scaled(0.1).cardinality == pytest.approx(100.0)


def test_equality_selectivity_uses_distinct(stats):
    assert estimate_selectivity("==", stats, "group") == pytest.approx(0.1)


def test_inequality_selectivity_complements_equality(stats):
    assert estimate_selectivity("!=", stats, "group") == pytest.approx(0.9)


def test_range_selectivity_interpolates(stats):
    assert estimate_selectivity("<", stats, "value", 50) == pytest.approx(0.5)
    assert estimate_selectivity(">", stats, "value", 75) == pytest.approx(0.25)


def test_range_selectivity_clamps_to_bounds(stats):
    assert estimate_selectivity("<", stats, "value", 1000) == 1.0


def test_unknown_operator_raises(stats):
    with pytest.raises(ValueError):
        estimate_selectivity("like", stats, "value", 1)


def test_join_selectivity_containment():
    left = TableStats(100.0, 8, {"k": ColumnStats(distinct=100)})
    right = TableStats(1000.0, 8, {"k2": ColumnStats(distinct=500)})
    assert join_selectivity(left, right, "k", "k2") == pytest.approx(1 / 500)


def test_join_cardinality_foreign_key_shape():
    dim = TableStats(100.0, 8, {"d_id": ColumnStats(distinct=100)})
    fact = TableStats(10000.0, 8, {"f_d_id": ColumnStats(distinct=100)})
    # Every fact row matches exactly one dimension row.
    assert estimate_join_cardinality(fact, dim, [("f_d_id", "d_id")]) == pytest.approx(10000.0)


def test_group_count_capped_by_cardinality(stats):
    assert estimate_group_count(stats, ["key", "group"]) == 1000.0
    assert estimate_group_count(stats, ["group"]) == 10.0


def test_group_count_no_groups(stats):
    assert estimate_group_count(stats, []) == 1.0


def test_union_and_difference_cardinality(stats):
    other = TableStats(200.0, 32)
    assert union_cardinality([stats, other]) == 1200.0
    assert difference_cardinality(stats, other) == 800.0
    assert difference_cardinality(other, stats) == 0.0


def test_distinct_cardinality(stats):
    assert distinct_cardinality(stats, ["group"]) == 10.0


def test_from_relation_measures_distincts_and_bounds():
    schema = Schema.from_names(["a", "b"])
    relation = Relation(schema, [(1, 5), (1, 6), (2, 7)])
    measured = TableStats.from_relation(relation)
    assert measured.cardinality == 3.0
    assert measured.distinct("a") == 2.0
    assert measured.column("b").min_value == 5.0
    assert measured.column("b").max_value == 7.0
