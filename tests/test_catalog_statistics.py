"""Unit tests for statistics and selectivity estimation."""

import pytest

from repro.catalog.schema import Schema
from repro.catalog.statistics import (
    ColumnStats,
    Histogram,
    TableStats,
    difference_cardinality,
    distinct_cardinality,
    estimate_group_count,
    estimate_join_cardinality,
    estimate_selectivity,
    join_selectivity,
    union_cardinality,
)
from repro.storage.relation import Relation


@pytest.fixture
def stats():
    return TableStats(
        1000.0,
        32,
        {
            "key": ColumnStats(distinct=1000, min_value=1, max_value=1000),
            "group": ColumnStats(distinct=10, min_value=0, max_value=9),
            "value": ColumnStats(distinct=100, min_value=0, max_value=100),
        },
    )


def test_size_bytes(stats):
    assert stats.size_bytes == 1000 * 32


def test_distinct_clamped_by_cardinality():
    s = TableStats(5.0, 8, {"a": ColumnStats(distinct=100)})
    assert s.distinct("a") == 5.0


def test_distinct_fallback_without_stats(stats):
    # Unknown column: falls back to a fraction of the cardinality.
    assert stats.distinct("unknown") == pytest.approx(100.0)


def test_with_cardinality_clamps_column_distincts(stats):
    reduced = stats.with_cardinality(5.0)
    assert reduced.cardinality == 5.0
    assert reduced.distinct("key") == 5.0


def test_scaled_scales_cardinality(stats):
    assert stats.scaled(0.1).cardinality == pytest.approx(100.0)


def test_equality_selectivity_uses_distinct(stats):
    assert estimate_selectivity("==", stats, "group") == pytest.approx(0.1)


def test_inequality_selectivity_complements_equality(stats):
    assert estimate_selectivity("!=", stats, "group") == pytest.approx(0.9)


def test_range_selectivity_interpolates(stats):
    assert estimate_selectivity("<", stats, "value", 50) == pytest.approx(0.5)
    assert estimate_selectivity(">", stats, "value", 75) == pytest.approx(0.25)


def test_range_selectivity_clamps_to_bounds(stats):
    assert estimate_selectivity("<", stats, "value", 1000) == 1.0


def test_unknown_operator_raises(stats):
    with pytest.raises(ValueError):
        estimate_selectivity("like", stats, "value", 1)


def test_join_selectivity_containment():
    left = TableStats(100.0, 8, {"k": ColumnStats(distinct=100)})
    right = TableStats(1000.0, 8, {"k2": ColumnStats(distinct=500)})
    assert join_selectivity(left, right, "k", "k2") == pytest.approx(1 / 500)


def test_join_cardinality_foreign_key_shape():
    dim = TableStats(100.0, 8, {"d_id": ColumnStats(distinct=100)})
    fact = TableStats(10000.0, 8, {"f_d_id": ColumnStats(distinct=100)})
    # Every fact row matches exactly one dimension row.
    assert estimate_join_cardinality(fact, dim, [("f_d_id", "d_id")]) == pytest.approx(10000.0)


def test_group_count_capped_by_cardinality(stats):
    assert estimate_group_count(stats, ["key", "group"]) == 1000.0
    assert estimate_group_count(stats, ["group"]) == 10.0


def test_group_count_no_groups(stats):
    assert estimate_group_count(stats, []) == 1.0


def test_union_and_difference_cardinality(stats):
    other = TableStats(200.0, 32)
    assert union_cardinality([stats, other]) == 1200.0
    assert difference_cardinality(stats, other) == 800.0
    assert difference_cardinality(other, stats) == 0.0


def test_distinct_cardinality(stats):
    assert distinct_cardinality(stats, ["group"]) == 10.0


def test_from_relation_measures_distincts_and_bounds():
    schema = Schema.from_names(["a", "b"])
    relation = Relation(schema, [(1, 5), (1, 6), (2, 7)])
    measured = TableStats.from_relation(relation)
    assert measured.cardinality == 3.0
    assert measured.distinct("a") == 2.0
    assert measured.column("b").min_value == 5.0
    assert measured.column("b").max_value == 7.0


# ------------------------------------------------------- satellite regressions


def test_lookup_prefers_exact_qualified_match():
    stats = TableStats(
        100.0,
        8,
        {
            "orders.key": ColumnStats(distinct=10.0),
            "lineitem.key": ColumnStats(distinct=50.0),
        },
    )
    assert stats.column("lineitem.key").distinct == 50.0
    assert stats.column("orders.key").distinct == 10.0


def test_lookup_resolves_ambiguous_suffix_deterministically():
    """An ambiguous unqualified suffix must not drop to the magic-constant path."""
    stats = TableStats(
        100.0,
        8,
        {
            "orders.key": ColumnStats(distinct=10.0),
            "lineitem.key": ColumnStats(distinct=50.0),
        },
    )
    resolved = stats.column("key")
    assert resolved is not None
    # Deterministic: the lexicographically smallest qualified name wins.
    assert resolved.distinct == 50.0
    # And therefore real statistics are used instead of the 10% fallback.
    assert stats.distinct("key") == 50.0


def test_range_selectivity_exact_outside_bounds(stats):
    # value column spans [0, 100]; values strictly outside are exact 0/1,
    # not the 1/cardinality clamp.
    assert estimate_selectivity("<", stats, "value", -5) == 0.0
    assert estimate_selectivity("<=", stats, "value", -5) == 0.0
    assert estimate_selectivity(">", stats, "value", -5) == 1.0
    assert estimate_selectivity(">=", stats, "value", -5) == 1.0
    assert estimate_selectivity("<", stats, "value", 200) == 1.0
    assert estimate_selectivity(">", stats, "value", 200) == 0.0
    assert estimate_selectivity(">=", stats, "value", 200) == 0.0


# ----------------------------------------------------------------- histograms


def test_equi_depth_histogram_from_values():
    histogram = Histogram.from_values(list(range(100)), buckets=4)
    assert histogram.total == 100.0
    assert histogram.min_value == 0.0 and histogram.max_value == 99.0
    assert histogram.fraction_at_most(49) == pytest.approx(0.5, abs=0.03)
    assert histogram.fraction_at_most(-1) == 0.0
    assert histogram.fraction_at_most(1000) == 1.0


def test_histogram_scaled_from_sample():
    histogram = Histogram.from_values([1, 2, 3, 4], buckets=2, scale=25.0)
    assert histogram.total == 100.0


def test_histogram_shifted_moves_counts_and_widens_bounds():
    histogram = Histogram.from_values(list(range(10)), buckets=2)
    inserted = histogram.shifted([0, 1, 2, 15], sign=1)
    assert inserted.total == histogram.total + 4
    assert inserted.max_value == 15.0
    deleted = inserted.shifted([0, 1], sign=-1)
    assert deleted.total == inserted.total - 2
    # Deletes never push a bucket negative.
    drained = histogram.shifted([0] * 100, sign=-1)
    assert all(c >= 0 for c in drained.counts)


def test_sampled_measurement_stays_close_to_exact():
    schema = Schema.from_names(["v"])
    rows = [(i % 500,) for i in range(20000)]
    relation = Relation(schema, rows)
    sampled = TableStats.from_relation(relation, sample_size=2000)
    exact = TableStats.from_relation(relation, sample_size=50000)
    assert sampled.cardinality == exact.cardinality == 20000.0
    # GEE distinct estimate within a factor of 2 of the true 500.
    assert 250.0 <= sampled.distinct("v") <= 1000.0
    # The histogram totals the full cardinality even though it was sampled.
    assert sampled.column("v").histogram.total == pytest.approx(20000.0, rel=0.01)


def test_updated_by_delta_maintains_bounds_and_histogram():
    schema = Schema.from_names(["v"])
    relation = Relation(schema, [(float(i),) for i in range(100)])
    stats = TableStats.from_relation(relation)
    inserts = Relation(schema, [(150.0,), (2.0,)])
    updated = stats.updated_by_delta(inserts, sign=1)
    assert updated.cardinality == 102.0
    assert updated.column("v").max_value == 150.0
    assert updated.column("v").histogram.total == pytest.approx(102.0)
    shrunk = updated.updated_by_delta(Relation(schema, [(2.0,)]), sign=-1)
    assert shrunk.cardinality == 101.0
    assert shrunk.column("v").histogram.total == pytest.approx(101.0)
