"""Tests for update specifications and the paper's update numbering."""

import pytest

from repro.maintenance.update_spec import RelationUpdate, UpdateSpec
from repro.storage.delta import DeltaKind
from repro.workloads import tpcd


def test_uniform_spec_has_two_to_one_insert_delete_ratio():
    spec = UpdateSpec.uniform(0.10, ["orders", "lineitem"])
    update = spec.for_relation("orders")
    assert update.insert_fraction == pytest.approx(0.10)
    assert update.delete_fraction == pytest.approx(0.05)


def test_uniform_spec_custom_ratio():
    spec = UpdateSpec.uniform(0.10, ["orders"], insert_to_delete_ratio=1.0)
    assert spec.for_relation("orders").delete_fraction == pytest.approx(0.10)


def test_uniform_spec_without_relations_applies_everywhere():
    spec = UpdateSpec.uniform(0.20)
    assert spec.for_relation("anything").insert_fraction == pytest.approx(0.20)
    restricted = spec.restricted_to(["orders"])
    assert restricted.updated_relations() == ["orders"]


def test_negative_percentage_rejected():
    with pytest.raises(ValueError):
        UpdateSpec.uniform(-0.1)


def test_none_spec_has_no_updates():
    spec = UpdateSpec.none(["orders"])
    assert spec.updated_relations() == []
    assert spec.update_ids(["orders"]) == []


def test_update_ids_follow_paper_numbering():
    spec = UpdateSpec.uniform(0.10, ["A", "B"])
    ids = spec.update_ids()
    assert [(u.number, u.relation, u.kind) for u in ids] == [
        (1, "A", DeltaKind.INSERT),
        (2, "A", DeltaKind.DELETE),
        (3, "B", DeltaKind.INSERT),
        (4, "B", DeltaKind.DELETE),
    ]


def test_update_ids_skip_empty_kinds():
    spec = UpdateSpec({"A": RelationUpdate(insert_fraction=0.1, delete_fraction=0.0)}, ["A"])
    assert [str(u) for u in spec.update_ids()] == ["δ+A"]
    assert len(spec.update_ids(only_nonempty=False)) == 2


def test_delta_stats_scale_with_catalog():
    catalog = tpcd.tpcd_catalog(scale_factor=0.1)
    spec = UpdateSpec.uniform(0.10, ["orders"])
    stats = spec.delta_stats(catalog, "orders", DeltaKind.INSERT)
    assert stats.cardinality == pytest.approx(catalog.stats("orders").cardinality * 0.10)
    deletes = spec.delta_cardinality(catalog, "orders", DeltaKind.DELETE)
    assert deletes == pytest.approx(catalog.stats("orders").cardinality * 0.05)


def test_describe_lists_updated_relations():
    spec = UpdateSpec.uniform(0.10, ["orders"])
    assert "orders" in spec.describe()
    assert UpdateSpec.none(["orders"]).describe() == "no updates"


def test_restricted_to_preserves_order():
    spec = UpdateSpec.uniform(0.10, ["a", "b", "c"])
    assert spec.restricted_to(["c", "a"]).relation_order == ["c", "a"]
