"""Tests for the maintenance cost engine (compcost / diffCost / maintcost)."""

import pytest

from repro.maintenance.cost_engine import MaintenanceCostEngine
from repro.maintenance.diff_dag import DifferentialAnnotations, ResultKey
from repro.maintenance.update_spec import UpdateSpec
from repro.optimizer.dag_builder import build_dag
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def catalog():
    return tpcd.tpcd_catalog(scale_factor=0.1)


def make_engine(catalog, views, percentage=0.10):
    from repro.algebra.expressions import base_relations

    dag = build_dag(views, catalog)
    relations = sorted({r for e in views.values() for r in base_relations(e)})
    spec = UpdateSpec.uniform(percentage, relations)
    engine = MaintenanceCostEngine(dag, catalog, spec)
    engine.set_materialized(ResultKey(dag.roots[name].id, 0) for name in views)
    return dag, engine


@pytest.fixture(scope="module")
def join_view_engine(catalog):
    return make_engine(catalog, queries.standalone_join_view())


@pytest.fixture(scope="module")
def agg_view_engine(catalog):
    return make_engine(catalog, queries.standalone_agg_view())


def test_compcost_positive_and_stable(join_view_engine):
    dag, engine = join_view_engine
    root = dag.roots["v_order_details"]
    first = engine.compcost(root.id)
    assert first > 0
    assert engine.compcost(root.id) == first  # memoized, deterministic


def test_diffcost_zero_for_unrelated_relation(catalog):
    # Two views over disjoint relations: updates of one view's relations
    # yield empty (zero-cost) differentials for the other view.
    views = {
        "v_oc": queries.chain_join(["orders", "customer"]),
        "v_sn": queries.chain_join(["supplier", "nation"]),
    }
    dag, engine = make_engine(catalog, views)
    oc_root = dag.roots["v_oc"]
    nation_update = next(u for u in engine.annotations.updates() if u.relation == "nation")
    assert engine.diffcost(oc_root.id, nation_update.number) == 0.0


def test_diffcost_smaller_than_recompute_at_low_update_rate(catalog):
    dag, engine = make_engine(catalog, queries.standalone_agg_view(), percentage=0.01)
    root = dag.roots["v_revenue_by_nation"]
    assert engine.maintcost(root.id) < engine.recompute_cost(root.id)


def test_recompute_wins_at_very_high_update_rate(catalog):
    dag, engine = make_engine(catalog, queries.standalone_join_view(), percentage=0.8)
    root = dag.roots["v_order_details"]
    assert engine.prefers_recomputation(root.id)


def test_total_diff_cost_sums_updates(join_view_engine):
    dag, engine = join_view_engine
    root = dag.roots["v_order_details"]
    total = engine.total_diff_cost(root.id)
    manual = sum(
        engine.diffcost(root.id, u.number)
        for u in engine.annotations.updates()
        if u.relation in root.base_relations
    )
    assert total == pytest.approx(manual)
    assert engine.maintcost(root.id) == pytest.approx(total + engine.merge_cost(root.id))


def test_materializing_full_result_reduces_consumer_compcost(catalog):
    views = {
        "v1": queries.chain_join(["lineitem", "orders", "customer"]),
        "v2": queries.chain_join(["lineitem", "orders", "customer", "nation"]),
    }
    dag, engine = make_engine(catalog, views)
    inner = dag.roots["v1"]
    outer = dag.roots["v2"]
    before = engine.compcost(outer.id)
    engine.add_materialized(ResultKey(inner.id, 0))  # already materialized as a view; idempotent
    shared = next(
        n for n in dag.equivalence_nodes if n.base_relations == frozenset({"lineitem", "orders"})
    )
    engine.add_materialized(ResultKey(shared.id, 0))
    after = engine.compcost(outer.id)
    assert after <= before + 1e-9


def test_adding_index_reduces_diffcost(catalog):
    dag, engine = make_engine(catalog, queries.standalone_join_view())
    root = dag.roots["v_order_details"]
    orders_node = next(n for n in dag.equivalence_nodes if n.key == "orders")
    update = next(u for u in engine.annotations.updates() if str(u) == "δ+customer")
    before = engine.diffcost(root.id, update.number)
    engine.add_index(orders_node.id, ("o_custkey",))
    after = engine.diffcost(root.id, update.number)
    assert after <= before + 1e-9
    engine.remove_index(orders_node.id, ("o_custkey",))
    assert engine.diffcost(root.id, update.number) == pytest.approx(before)


def test_index_on_view_reduces_merge_cost(join_view_engine):
    dag, engine = join_view_engine
    root = dag.roots["v_order_details"]
    with engine.speculative():
        before = engine.merge_cost(root.id)
        engine.add_index(root.id, ("l_orderkey",))
        after = engine.merge_cost(root.id)
        assert after < before


def test_materializing_differential_enables_reuse(catalog):
    views = {
        "v1": queries.chain_join(["lineitem", "orders", "customer"]),
        "v2": queries.chain_join(["lineitem", "orders", "customer", "nation"]),
    }
    dag, engine = make_engine(catalog, views)
    shared = dag.roots["v1"]
    update = next(u for u in engine.annotations.updates() if str(u) == "δ+lineitem")
    plain = engine.diff_input_cost(shared.id, update.number)
    engine.add_materialized(ResultKey(shared.id, update.number))
    reused = engine.diff_input_cost(shared.id, update.number)
    assert reused <= plain + 1e-9


def test_speculative_rolls_back_state(join_view_engine):
    dag, engine = join_view_engine
    root = dag.roots["v_order_details"]
    baseline = engine.total_cost()
    shared = next(
        n for n in dag.equivalence_nodes if n.base_relations == frozenset({"lineitem", "orders"})
    )
    with engine.speculative():
        engine.add_materialized(ResultKey(shared.id, 0))
        engine.add_index(root.id, ("l_orderkey",))
        inside = engine.total_cost()
        assert inside != baseline
    assert engine.total_cost() == pytest.approx(baseline)
    assert ResultKey(shared.id, 0) not in engine.materialized


def test_incremental_invalidation_matches_full_recompute(catalog):
    views = queries.view_set_plain()
    dag, engine = make_engine(catalog, views)
    shared = next(
        n for n in dag.equivalence_nodes if n.base_relations == frozenset({"orders", "customer"})
    )
    # Incrementally updated costs...
    engine.add_materialized(ResultKey(shared.id, 0))
    incremental_total = engine.total_cost()
    # ...must equal costs computed from scratch with the same materialized set.
    fresh = MaintenanceCostEngine(dag, catalog, engine.spec, annotations=engine.annotations)
    fresh.set_materialized(set(engine.materialized))
    assert incremental_total == pytest.approx(fresh.total_cost())


def test_result_cost_for_differentials(join_view_engine):
    dag, engine = join_view_engine
    root = dag.roots["v_order_details"]
    update = engine.annotations.updates()[0]
    key = ResultKey(root.id, update.number)
    assert engine.result_cost(key) == pytest.approx(
        engine.diffcost(root.id, update.number) + engine.matcost(root.id, update.number)
    )


def test_aggregate_diff_depends_on_materialization(catalog):
    dag, engine = make_engine(catalog, queries.standalone_agg_view(), percentage=0.05)
    root = dag.roots["v_revenue_by_nation"]
    update = next(u for u in engine.annotations.updates() if str(u) == "δ+lineitem")
    materialized_cost = engine.diffcost(root.id, update.number)
    engine.remove_materialized(ResultKey(root.id, 0))
    unmaterialized_cost = engine.diffcost(root.id, update.number)
    assert unmaterialized_cost > materialized_cost
    engine.add_materialized(ResultKey(root.id, 0))


def test_index_cost_positive_for_updated_targets(join_view_engine):
    dag, engine = join_view_engine
    orders_node = next(n for n in dag.equivalence_nodes if n.key == "orders")
    assert engine.index_cost(orders_node.id, ("o_custkey",)) > 0
    root = dag.roots["v_order_details"]
    assert engine.index_cost(root.id, ("l_orderkey",)) > 0


def test_total_cost_includes_index_maintenance(join_view_engine):
    dag, engine = join_view_engine
    root = dag.roots["v_order_details"]
    with engine.speculative():
        base = engine.total_cost()
        without_index_costs = engine.total_cost(index_costs=False)
        assert base == pytest.approx(without_index_costs)
        orders_node = next(n for n in dag.equivalence_nodes if n.key == "orders")
        engine.add_index(orders_node.id, ("o_custkey",))
        assert engine.total_cost() >= engine.total_cost(index_costs=False)
