"""Tests for the Volcano best-plan search over the DAG."""

import pytest

from repro.optimizer.cost_model import CostModel
from repro.optimizer.dag_builder import build_dag
from repro.optimizer.volcano import VolcanoSearch
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def catalog():
    return tpcd.tpcd_catalog(scale_factor=0.01)


@pytest.fixture(scope="module")
def dag(catalog):
    return build_dag(
        {
            "Q1": queries.chain_join(["lineitem", "orders", "customer"]),
            "Q2": queries.chain_join(["orders", "customer", "nation"]),
        },
        catalog,
    )


def test_best_plan_cost_positive_and_cached(dag, catalog):
    search = VolcanoSearch(dag, catalog, CostModel())
    result = search.optimize()
    for root in dag.roots.values():
        assert result.compcost(root.id) > 0
    # Base relations cost exactly their scan cost.
    base = next(n for n in dag.equivalence_nodes if n.is_base_relation)
    assert result.compcost(base.id) == pytest.approx(
        search.cost_model.scan_cost(catalog.stats(base.expression.canonical()))
    )


def test_best_plan_not_worse_than_any_single_alternative(dag, catalog):
    search = VolcanoSearch(dag, catalog, CostModel())
    result = search.optimize()
    root = dag.roots["Q1"]
    best = result.compcost(root.id)
    for operation in root.children:
        input_costs = [result.compcost(child.id) for child in operation.inputs]
        alternative, _ = search.operation_total_cost(operation, frozenset(), input_costs)
        assert best <= alternative + 1e-9


def test_materializing_shared_node_reduces_consumer_cost(dag, catalog):
    search = VolcanoSearch(dag, catalog, CostModel())
    shared = next(
        n
        for n in dag.equivalence_nodes
        if n.base_relations == frozenset({"orders", "customer"})
    )
    baseline = search.optimize()
    with_mat = search.optimize(materialized={shared.id})
    for root in dag.roots.values():
        assert with_mat.compcost(root.id) <= baseline.compcost(root.id) + 1e-9
    assert with_mat.cost_with_reuse(shared.id) <= baseline.compcost(shared.id)


def test_plan_extraction_structure(dag, catalog):
    search = VolcanoSearch(dag, catalog, CostModel())
    result = search.optimize()
    plan = result.extract_plan(dag.roots["Q1"].id)
    assert plan.count_nodes() >= 5  # two joins + three scans
    text = plan.pretty()
    assert "scan(" in text and "⋈" in text


def test_plan_extraction_marks_reused_results():
    # At the paper's scale factor the orders⋈customer intermediate is large
    # enough that re-reading its materialized copy beats recomputing it, so
    # the extracted plan for the second query must reuse it.
    big_catalog = tpcd.tpcd_catalog(scale_factor=0.1)
    big_dag = build_dag(
        {
            "Q1": queries.chain_join(["lineitem", "orders", "customer"]),
            "Q2": queries.chain_join(["lineitem", "orders", "customer", "nation"]),
        },
        big_catalog,
    )
    search = VolcanoSearch(big_dag, big_catalog, CostModel())
    shared = big_dag.roots["Q1"]  # lineitem⋈orders⋈customer, shared with Q2
    result = search.optimize(materialized={shared.id})
    plan = result.extract_plan(big_dag.roots["Q2"].id)
    reused_ids = {node.node_id for node in plan.reused_nodes()}
    assert shared.id in reused_ids, "the materialized shared result should be reused in Q2's plan"


def test_root_not_reused_when_extracting_its_own_plan(dag, catalog):
    search = VolcanoSearch(dag, catalog, CostModel())
    root = dag.roots["Q1"]
    result = search.optimize(materialized={root.id})
    plan = result.extract_plan(root.id)
    assert not plan.reused
    assert plan.children


def test_extra_indexes_enable_cheaper_plans(catalog):
    dag = build_dag({"Q": queries.chain_join(["lineitem", "orders", "customer"])}, catalog)
    shared = next(
        n for n in dag.equivalence_nodes if n.base_relations == frozenset({"orders", "customer"})
    )
    plain = VolcanoSearch(dag, catalog, CostModel())
    with_index = VolcanoSearch(dag, catalog, CostModel(), extra_indexes={shared.id: [("o_orderkey",)]})
    cost_plain = plain.optimize(materialized={shared.id}).compcost(dag.roots["Q"].id)
    cost_indexed = with_index.optimize(materialized={shared.id}).compcost(dag.roots["Q"].id)
    assert cost_indexed <= cost_plain
