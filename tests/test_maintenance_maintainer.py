"""End-to-end correctness of the executable view refresher.

The decisive check: after a refresh driven by differential propagation (one
relation, one update kind at a time), every materialized view contains
exactly the same bag of tuples as recomputing its definition on the updated
database.
"""

import pytest

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Join,
    Project,
    Select,
)
from repro.algebra.predicates import gt
from repro.engine.executor import evaluate
from repro.maintenance.maintainer import ViewRefresher, apply_and_refresh
from repro.storage.delta import Delta, DeltaStore
from repro.storage.relation import Relation


def star_views():
    join = Join(
        Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")]),
        BaseRelation("stores"),
        [("store_id", "st_id")],
    )
    return {
        "v_detail": join,
        "v_by_store": Aggregate(
            join,
            ["st_city"],
            [
                AggregateSpec(AggregateFunc.SUM, "amount", "revenue"),
                AggregateSpec(AggregateFunc.COUNT, None, "n"),
            ],
        ),
        "v_expensive": Select(Project(BaseRelation("sales"), ["sale_id", "amount"]), gt("amount", 25.0)),
    }


def star_deltas(database, with_deletes=True, order=("sales", "products", "stores")):
    sales_schema = database.table("sales").schema
    products_schema = database.table("products").schema
    stores_schema = database.table("stores").schema
    store = DeltaStore(list(order))
    store.set_delta(
        Delta(
            "sales",
            inserts=Relation(sales_schema, [(7, 11, 102, 2, 44.0), (8, 13, 100, 1, 9.0)]),
            deletes=Relation(sales_schema, [(1, 10, 100, 2, 20.0)] if with_deletes else []),
        )
    )
    store.set_delta(
        Delta(
            "products",
            inserts=Relation(products_schema, [(13, "doodad", "toys", 9.0)]),
            deletes=Relation(products_schema, [(12, "gizmo", "toys", 30.0)] if with_deletes else []),
        )
    )
    store.set_delta(
        Delta(
            "stores",
            inserts=Relation(stores_schema, [(103, "capital city", "east")]),
            deletes=Relation(stores_schema, []),
        )
    )
    return store


def test_refresh_matches_recomputation(star_database):
    database = star_database.copy()
    views = star_views()
    refresher = ViewRefresher(database, views)
    refresher.initialize_views()
    report = refresher.refresh(star_deltas(database))
    verification = refresher.verify_against_recomputation()
    assert all(verification.values()), f"views diverged: {verification}"
    assert report.steps, "incremental steps should have been recorded"


def test_refresh_insert_only(star_database):
    database = star_database.copy()
    views = star_views()
    report, verification = apply_and_refresh(database, views, star_deltas(database, with_deletes=False))
    assert all(verification.values())
    assert report.total_changes() > 0


def test_refresh_with_recompute_strategy_for_some_views(star_database):
    database = star_database.copy()
    views = star_views()
    refresher = ViewRefresher(database, views, recompute_views=["v_detail"])
    refresher.initialize_views()
    report = refresher.refresh(star_deltas(database))
    assert "v_detail" in report.recomputed_views
    assert all(refresher.verify_against_recomputation().values())
    # No incremental steps were recorded for the recomputed view.
    assert all(step.view != "v_detail" for step in report.steps)


def test_refresh_with_temporary_shared_subexpression(star_database):
    database = star_database.copy()
    views = star_views()
    shared = Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")])
    refresher = ViewRefresher(database, views, temporary_subexpressions={"tmp_sp": shared})
    refresher.initialize_views()
    refresher.refresh(star_deltas(database))
    assert all(refresher.verify_against_recomputation().values())
    # Temporary results are dropped after the refresh.
    assert not database.has_view("tmp_sp")


def test_temporaries_only_recomputed_when_dependencies_updated(star_database):
    """A temporary is only recomputed once a relation it depends on changed.

    With the stores update propagated first, the sales⋈products temporary
    materialized for that round is still exact when the sales-insert round
    begins (stores does not feed it), so that round reuses it.  Each
    subsequent round starts after a sales or products update, forcing a
    recompute.  The old behavior recomputed the temporary on all 5 rounds.
    """
    database = star_database.copy()
    views = star_views()
    shared = Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")])
    refresher = ViewRefresher(database, views, temporary_subexpressions={"tmp_sp": shared})
    refresher.initialize_views()

    computed = []
    original = refresher._compute

    def counting_compute(expression, materialized=None):
        computed.append(expression.canonical())
        return original(expression, materialized)

    refresher._compute = counting_compute
    refresher.refresh(star_deltas(database, order=("stores", "sales", "products")))
    assert all(refresher.verify_against_recomputation().values())
    assert not database.has_view("tmp_sp")

    # Non-empty rounds in order: stores-ins, sales-ins, sales-del,
    # products-ins, products-del.  The temporary is computed for the stores
    # round (first need), *reused* for sales-ins, then recomputed for the
    # three rounds that follow a sales/products base update: 4, not 5.
    temporary_computations = computed.count(shared.canonical())
    assert temporary_computations == 4


def test_stale_temporary_is_actually_recomputed_not_read_back(star_database):
    """Recomputing a stale temporary must not read its own stale contents.

    Regression test: a stale temporary left registered during its own
    recomputation short-circuits through the registry to the stale stored
    view, so consecutive rounds on the same relation (insert then delete)
    propagated round-1-stale old values into round 2 and corrupted the view.
    """
    database = star_database.copy()
    shared = Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")])
    views = {
        "v_cat_rev": Aggregate(
            shared, ["p_category"], [AggregateSpec(AggregateFunc.SUM, "amount", "revenue")]
        )
    }
    sales_schema = database.table("sales").schema
    deltas = DeltaStore(["sales"])
    deltas.set_delta(
        Delta(
            "sales",
            inserts=Relation(sales_schema, [(7, 12, 100, 1, 60.0)]),
            deletes=Relation(sales_schema, [(4, 12, 102, 1, 30.0)]),
        )
    )
    refresher = ViewRefresher(database, views, temporary_subexpressions={"tmp_sp": shared})
    refresher.initialize_views()
    refresher.refresh(deltas)
    verification = refresher.verify_against_recomputation()
    assert all(verification.values()), f"views diverged: {verification}"


def test_vectorized_refresh_verified_against_oracle(star_database):
    """The vectorized engine's deltas are checked bag-for-bag by the oracle."""
    database = star_database.copy()
    views = star_views()
    refresher = ViewRefresher(
        database, views, vectorized_differentials=True, verify_differentials=True
    )
    refresher.initialize_views()
    report = refresher.refresh(star_deltas(database))
    assert report.steps
    assert all(refresher.verify_against_recomputation().values())


def test_interpreted_and_vectorized_refresh_agree(star_database):
    """Both differential paths leave identical view contents behind."""
    views = star_views()
    results = {}
    for vectorized in (False, True):
        database = star_database.copy()
        refresher = ViewRefresher(database, views, vectorized_differentials=vectorized)
        refresher.initialize_views()
        refresher.refresh(star_deltas(database))
        assert all(refresher.verify_against_recomputation().values())
        results[vectorized] = {name: database.view(name) for name in views}
    for name in views:
        assert results[False][name].same_bag(results[True][name])


def test_refresh_updates_base_tables_too(star_database):
    database = star_database.copy()
    views = star_views()
    before = len(database.table("sales"))
    apply_and_refresh(database, views, star_deltas(database))
    # +2 inserts, -1 delete
    assert len(database.table("sales")) == before + 1


def test_aggregate_view_values_after_refresh(star_database):
    database = star_database.copy()
    views = {"v_by_store": star_views()["v_by_store"]}
    apply_and_refresh(database, views, star_deltas(database))
    recomputed = evaluate(views["v_by_store"], database)
    assert database.view("v_by_store").same_bag(recomputed)
    cities = {row[0] for row in database.view("v_by_store").rows}
    assert "ogdenville" in cities


def test_report_total_changes_filter_by_view(star_database):
    database = star_database.copy()
    views = star_views()
    report, _ = apply_and_refresh(database, views, star_deltas(database))
    assert report.total_changes("v_detail") <= report.total_changes()


def test_tpcd_views_refresh_correctly(tiny_tpcd_database):
    """The TPC-D workload views stay consistent through a generated update batch."""
    from repro.maintenance.update_spec import UpdateSpec
    from repro.workloads import queries as q
    from repro.workloads.updategen import generate_deltas

    database = tiny_tpcd_database.copy()
    views = {
        "v_order_details": q.standalone_join_view()["v_order_details"],
        "v_revenue_by_nation": q.standalone_agg_view()["v_revenue_by_nation"],
    }
    spec = UpdateSpec.uniform(0.2, ["lineitem", "orders", "customer", "nation"])
    deltas = generate_deltas(database, spec, ["lineitem", "orders", "customer", "nation"], seed=3)
    report, verification = apply_and_refresh(database, views, deltas)
    assert all(verification.values()), f"TPC-D views diverged: {verification}"
    assert report.total_changes() > 0
