"""Unit tests for logical-expression evaluation over a database."""

import pytest

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Difference,
    Distinct,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import eq, gt, lit
from repro.engine.executor import MaterializedRegistry, evaluate
from repro.storage.relation import Relation


def test_base_relation_evaluation(star_database):
    result = evaluate(BaseRelation("sales"), star_database)
    assert len(result) == 6


def test_join_evaluation(star_database):
    expression = Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")])
    result = evaluate(expression, star_database)
    assert len(result) == 6
    # Every output row carries both sides' columns.
    assert len(result.schema) == 5 + 4


def test_three_way_join_and_select(star_database):
    expression = Select(
        Join(
            Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")]),
            BaseRelation("stores"),
            [("store_id", "st_id")],
        ),
        eq("st_region", lit("north")),
    )
    result = evaluate(expression, star_database)
    assert len(result) == 4


def test_projection_and_distinct(star_database):
    expression = Distinct(Project(BaseRelation("sales"), ["product_id"]))
    result = evaluate(expression, star_database)
    assert sorted(result.rows) == [(10,), (11,), (12,)]


def test_aggregate_evaluation(star_database):
    expression = Aggregate(
        BaseRelation("sales"),
        ["store_id"],
        [AggregateSpec(AggregateFunc.SUM, "amount", "revenue")],
    )
    result = evaluate(expression, star_database)
    revenue = dict(result.rows)
    assert revenue[100] == pytest.approx(215.0)
    assert revenue[101] == pytest.approx(40.0)
    assert revenue[102] == pytest.approx(30.0)


def test_union_and_difference_evaluation(star_database):
    sales = BaseRelation("sales")
    union = UnionAll([sales, sales])
    assert len(evaluate(union, star_database)) == 12
    difference = Difference(union, sales)
    assert len(evaluate(difference, star_database)) == 6


def test_join_algorithm_selection(star_database):
    expression = Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")])
    hash_result = evaluate(expression, star_database, join_algorithm="hash")
    merge_result = evaluate(expression, star_database, join_algorithm="merge")
    nl_result = evaluate(expression, star_database, join_algorithm="nested_loop")
    assert hash_result.same_bag(merge_result)
    assert hash_result.same_bag(nl_result)


def test_materialized_registry_is_used(star_database):
    expression = Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")])
    registry = MaterializedRegistry()
    fake = Relation(evaluate(expression, star_database).schema, [])
    star_database.materialize_view("cached_join", fake)
    registry.register(expression, "cached_join")
    result = evaluate(expression, star_database, materialized=registry)
    # The (empty) cached contents are returned instead of recomputation.
    assert len(result) == 0
    registry.unregister(expression)
    assert len(evaluate(expression, star_database, materialized=registry)) == 6


def test_registry_lookup_and_len(star_database):
    registry = MaterializedRegistry()
    expression = BaseRelation("sales")
    registry.register(expression, "v")
    assert registry.lookup(BaseRelation("sales")) == "v"
    assert len(registry) == 1


def test_unknown_expression_type_raises(star_database):
    with pytest.raises(TypeError):
        evaluate(object(), star_database)  # type: ignore[arg-type]
