"""Stats freshness invariants: incremental maintenance tracks measurement.

After refresh rounds, the incrementally maintained catalog statistics of
every view (updated O(|delta|) from the merged delta bags) must agree with a
from-scratch measurement of the stored view contents:

* cardinality exactly (the relation is the ground truth);
* maintained min/max bounds conservatively contain the measured ones
  (inserts widen them; deletes cannot shrink them without a re-measure);
* histogram totals within tolerance of the measured cardinality;
* distinct counts within a factor of the measured ones.

The same invariants are checked for the updated base tables.
"""

import pytest

from repro.catalog.statistics import TableStats
from repro.maintenance.maintainer import ViewRefresher
from repro.workloads import queries
from repro.workloads.datagen import small_database
from repro.workloads.updategen import uniform_deltas
from repro.algebra.expressions import base_relations

#: Relative tolerance for histogram totals against the measured cardinality.
HISTOGRAM_TOLERANCE = 0.15
#: Allowed multiplicative slack for maintained distinct counts.
DISTINCT_FACTOR = 3.0


def _assert_fresh(maintained: TableStats, relation, label: str) -> None:
    measured = TableStats.from_relation(relation)
    assert maintained is not None, f"{label}: no maintained statistics recorded"
    assert maintained.cardinality == measured.cardinality, (
        f"{label}: maintained cardinality {maintained.cardinality} != "
        f"measured {measured.cardinality}"
    )
    for name in relation.schema.names:
        measured_col = measured.column(name)
        maintained_col = maintained.column(name)
        if measured_col is None or maintained_col is None:
            continue
        if measured_col.min_value is not None and maintained_col.min_value is not None:
            # Both sides of the comparison may come from reservoir samples
            # (bounds are approximate by design for large relations), so
            # containment is asserted up to a fraction of the value range.
            slack = 0.02 * max(measured_col.max_value - measured_col.min_value, 1.0)
            assert maintained_col.min_value <= measured_col.min_value + slack, (
                f"{label}.{name}: maintained min {maintained_col.min_value} above "
                f"measured {measured_col.min_value}"
            )
            assert maintained_col.max_value >= measured_col.max_value - slack, (
                f"{label}.{name}: maintained max {maintained_col.max_value} below "
                f"measured {measured_col.max_value}"
            )
        if maintained_col.histogram is not None and measured.cardinality > 0:
            expected = measured.cardinality * (1.0 - measured_col.null_fraction)
            assert maintained_col.histogram.total == pytest.approx(
                expected, rel=HISTOGRAM_TOLERANCE, abs=2.0
            ), f"{label}.{name}: histogram total drifted from the relation size"
        if measured_col.distinct >= 1.0:
            ratio = maintained_col.distinct / measured_col.distinct
            assert 1.0 / DISTINCT_FACTOR <= ratio <= DISTINCT_FACTOR, (
                f"{label}.{name}: maintained distinct {maintained_col.distinct} vs "
                f"measured {measured_col.distinct}"
            )


def test_view_and_table_stats_stay_fresh_across_refresh_rounds():
    database = small_database(scale_factor=0.002)
    views = {**queries.standalone_join_view(), **queries.standalone_agg_view()}
    views.update(queries.view_set_plain())
    involved = sorted({r for e in views.values() for r in base_relations(e)})

    refresher = ViewRefresher(database, views, use_physical=True)
    refresher.initialize_views()

    for round_number in range(3):
        deltas = uniform_deltas(
            database, 0.08, relations=involved, seed=400 + round_number
        )
        refresher.refresh(deltas)

        for name in views:
            _assert_fresh(
                database.catalog.view_stats(name), database.view(name), f"view {name}"
            )
        for relation in involved:
            _assert_fresh(
                database.catalog.stats(relation), database.table(relation), f"table {relation}"
            )

    # The refreshed views themselves are still correct (the maintenance
    # invariant the statistics ride along with).
    assert all(refresher.verify_against_recomputation().values())
