"""Unit tests for delta relations and update numbering."""

import pytest

from repro.catalog.schema import Schema
from repro.storage.delta import Delta, DeltaKind, DeltaStore, UpdateId, update_numbering
from repro.storage.relation import Relation

SCHEMA = Schema.from_names(["k", "v"])


def _delta(name, inserts, deletes):
    return Delta(name, Relation(SCHEMA, inserts), Relation(SCHEMA, deletes))


def test_delta_kind_symbols():
    assert DeltaKind.INSERT.symbol == "δ+"
    assert DeltaKind.DELETE.symbol == "δ-"


def test_delta_is_empty_and_part():
    delta = _delta("r", [(1, 1)], [])
    assert not delta.is_empty
    assert len(delta.part(DeltaKind.INSERT)) == 1
    assert len(delta.part(DeltaKind.DELETE)) == 0
    assert _delta("r", [], []).is_empty


def test_update_numbering_follows_paper_convention():
    ids = update_numbering(["A", "B"])
    assert [(u.number, u.relation, u.kind) for u in ids] == [
        (1, "A", DeltaKind.INSERT),
        (2, "A", DeltaKind.DELETE),
        (3, "B", DeltaKind.INSERT),
        (4, "B", DeltaKind.DELETE),
    ]


def test_update_id_str():
    assert str(UpdateId(1, "orders", DeltaKind.INSERT)) == "δ+orders"


def test_store_rejects_unknown_relation():
    store = DeltaStore(["A"])
    with pytest.raises(KeyError):
        store.set_delta(_delta("B", [], []))


def test_store_lookup_and_has_updates():
    store = DeltaStore(["A", "B"])
    store.set_delta(_delta("A", [(1, 1)], []))
    assert store.has_updates("A")
    assert store.has_updates("A", DeltaKind.INSERT)
    assert not store.has_updates("A", DeltaKind.DELETE)
    assert not store.has_updates("B")
    assert len(store.relation_delta("A", DeltaKind.INSERT)) == 1


def test_store_relation_delta_missing_raises():
    store = DeltaStore(["A"])
    with pytest.raises(KeyError):
        store.relation_delta("A", DeltaKind.INSERT)


def test_update_ids_only_nonempty_filters():
    store = DeltaStore(["A", "B"])
    store.set_delta(_delta("A", [(1, 1)], []))
    store.set_delta(_delta("B", [], [(2, 2)]))
    ids = store.update_ids(only_nonempty=True)
    assert [str(u) for u in ids] == ["δ+A", "δ-B"]
    assert [u.number for u in ids] == [1, 4]


def test_update_id_for_relation_and_kind():
    store = DeltaStore(["A", "B"])
    update = store.update_id("B", DeltaKind.DELETE)
    assert update.number == 4


def test_iteration_in_relation_order():
    store = DeltaStore(["A", "B"])
    store.set_delta(_delta("B", [(1, 1)], []))
    store.set_delta(_delta("A", [(2, 2)], []))
    assert [d.relation for d in store] == ["A", "B"]
    assert len(store) == 2
