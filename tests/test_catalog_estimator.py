"""Unit tests for the unified cardinality estimator."""

import pytest

from repro.algebra.expressions import Aggregate, AggregateFunc, AggregateSpec, BaseRelation, Select
from repro.algebra.predicates import lt
from repro.catalog.catalog import Catalog
from repro.catalog.estimator import CardinalityEstimator, qerror
from repro.catalog.schema import Column, ColumnType, Schema, TableDef
from repro.catalog.statistics import ColumnStats, Histogram, TableStats


def _register(catalog: Catalog, name: str, columns, stats: TableStats) -> None:
    schema = Schema(tuple(Column(c, ColumnType.FLOAT) for c in columns))
    catalog.register_table(TableDef(name, schema), stats=stats)


@pytest.fixture
def skewed_catalog() -> Catalog:
    """One table whose ``v`` column is heavily skewed toward small values."""
    catalog = Catalog()
    # 900 rows in [0, 10], 100 rows in (10, 100]: decidedly non-uniform.
    histogram = Histogram(bounds=(0.0, 5.0, 10.0, 55.0, 100.0), counts=(450.0, 450.0, 50.0, 50.0))
    stats = TableStats(
        1000.0,
        16,
        {
            "k": ColumnStats(distinct=1000.0, min_value=1.0, max_value=1000.0),
            "v": ColumnStats(distinct=100.0, min_value=0.0, max_value=100.0, histogram=histogram),
        },
    )
    _register(catalog, "skewed", ["k", "v"], stats)
    return catalog


def test_qerror_is_symmetric_and_floored():
    assert qerror(10.0, 10.0) == 1.0
    assert qerror(10.0, 100.0) == qerror(100.0, 10.0)
    assert qerror(3.0, 0.0) == 4.0  # +1 smoothing keeps empty results finite


def test_histogram_selectivity_beats_uniform_interpolation(skewed_catalog):
    expression = Select(BaseRelation("skewed"), lt("v", 10.0))
    with_hist = CardinalityEstimator(skewed_catalog, use_histograms=True)
    uniform = CardinalityEstimator(skewed_catalog, use_histograms=False)
    # True cardinality is ~900; uniform interpolation says 10% of 1000.
    assert uniform.cardinality(expression) == pytest.approx(100.0)
    assert with_hist.cardinality(expression) == pytest.approx(900.0, rel=0.05)


def test_histogram_selectivity_exact_outside_range(skewed_catalog):
    estimator = CardinalityEstimator(skewed_catalog)
    below = Select(BaseRelation("skewed"), lt("v", -5.0))
    above = Select(BaseRelation("skewed"), lt("v", 500.0))
    assert estimator.cardinality(below) == 0.0
    assert estimator.cardinality(above) == pytest.approx(1000.0)


def test_equality_selectivity_uses_spike_buckets():
    histogram = Histogram(bounds=(1.0, 1.0, 10.0), counts=(500.0, 500.0))
    col = ColumnStats(distinct=10.0, min_value=1.0, max_value=10.0, histogram=histogram)
    # Half the rows are the heavy value 1 — far more than 1/distinct.
    assert histogram.equal_fraction(1.0, col.distinct) == pytest.approx(0.5)
    assert histogram.equal_fraction(50.0, col.distinct) == 0.0


def test_stats_memoized_until_catalog_version_changes(skewed_catalog):
    estimator = CardinalityEstimator(skewed_catalog)
    expression = Select(BaseRelation("skewed"), lt("v", 10.0))
    first = estimator.stats(expression)
    assert estimator.stats(expression) is first
    # Re-registering the table's statistics bumps its version: the memo
    # entry is revalidated and recomputed.
    skewed_catalog.register_table_stats(
        "skewed", TableStats(10.0, 16, {"v": ColumnStats(distinct=5.0)})
    )
    second = estimator.stats(expression)
    assert second is not first
    assert second.cardinality < first.cardinality


def test_feedback_observation_overrides_estimate(skewed_catalog):
    estimator = CardinalityEstimator(skewed_catalog)
    expression = Select(BaseRelation("skewed"), lt("v", 10.0))
    estimated = estimator.cardinality(expression)
    drifted = estimator.record_actual(expression, estimated, 333.0)
    assert drifted  # 900 vs 333 is past the 2.0 threshold
    assert estimator.cardinality(expression) == 333.0


def test_feedback_invalidates_embedding_expressions(skewed_catalog):
    estimator = CardinalityEstimator(skewed_catalog)
    child = Select(BaseRelation("skewed"), lt("v", 10.0))
    parent = Aggregate(child, ["v"], [AggregateSpec(AggregateFunc.COUNT, None, "n")])
    before = estimator.stats(parent)
    estimator.record_actual(child, estimator.cardinality(child), 3.0)
    after = estimator.stats(parent)
    # The parent's group count is capped by its child cardinality, which the
    # observation just corrected downward.
    assert after.cardinality <= before.cardinality
    assert estimator.cardinality(child) == 3.0


def test_observation_expires_when_base_stats_change(skewed_catalog):
    estimator = CardinalityEstimator(skewed_catalog)
    expression = Select(BaseRelation("skewed"), lt("v", 10.0))
    estimator.record_actual(expression, estimator.cardinality(expression), 42.0)
    key = expression.canonical()
    assert estimator.observed_cardinality(key) == 42.0
    skewed_catalog.register_table_stats(
        "skewed", TableStats(2000.0, 16, {"v": ColumnStats(distinct=100.0)})
    )
    assert estimator.observed_cardinality(key) is None


def test_plan_drifted_flags_stale_snapshots(skewed_catalog):
    estimator = CardinalityEstimator(skewed_catalog)
    expression = Select(BaseRelation("skewed"), lt("v", 10.0))
    key = expression.canonical()
    snapshot = {key: 100.0}
    assert not estimator.plan_drifted(snapshot)  # no observation yet
    estimator.record_actual(expression, 100.0, 100.0)
    assert not estimator.plan_drifted(snapshot)  # agrees
    estimator.record_actual(expression, 100.0, 900.0)
    assert estimator.plan_drifted(snapshot)  # 9x disagreement
    assert not CardinalityEstimator(skewed_catalog, use_feedback=False).plan_drifted(snapshot)


def test_for_catalog_clone_shares_observations_but_not_memo(skewed_catalog):
    estimator = CardinalityEstimator(skewed_catalog)
    other = Catalog()
    _register(
        other,
        "skewed",
        ["k", "v"],
        TableStats(7.0, 16, {"v": ColumnStats(distinct=3.0)}),
    )
    clone = estimator.for_catalog(other, use_feedback=False)
    expression = BaseRelation("skewed")
    assert estimator.cardinality(expression) == 1000.0
    assert clone.cardinality(expression) == 7.0
    estimator.record_actual(expression, 1000.0, 555.0)
    assert clone._observations is estimator._observations
    # The clone sees the shared store but, with feedback off, never applies it.
    assert clone.cardinality(expression) == 7.0


def test_join_stats_merges_columns_and_clamps(skewed_catalog):
    estimator = CardinalityEstimator(skewed_catalog)
    left = TableStats(100.0, 8, {"a": ColumnStats(distinct=100.0)})
    right = TableStats(1000.0, 8, {"b": ColumnStats(distinct=100.0)})
    joined = estimator.join_stats(left, right, [("a", "b")])
    assert joined.cardinality == pytest.approx(1000.0)
    assert joined.tuple_width == 16
    assert joined.column("a") is not None and joined.column("b") is not None


def test_comparison_selectivity_falls_back_without_histograms(skewed_catalog):
    estimator = CardinalityEstimator(skewed_catalog, use_histograms=True)
    stats = TableStats(100.0, 8, {"c": ColumnStats(distinct=10.0)})
    # No histogram, no bounds: the System-R distinct-count formula applies.
    assert estimator.comparison_selectivity("==", stats, "c", 5.0) == pytest.approx(0.1)
