"""Tests for differential (delta) propagation through expressions.

The central invariant — the one the whole maintenance machinery rests on —
is checked for every operator shape:

    new(E)  ==  old(E)  −  δ−(E)  ∪  δ+(E)

where ``new(E)`` recomputes the expression after applying the base update.
"""

import pytest

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Difference,
    Distinct,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import eq, gt
from repro.catalog.schema import Schema, TableDef
from repro.engine.database import Database
from repro.engine.differential import DifferentialEngine, differentiate
from repro.engine.executor import MaterializedRegistry, evaluate
from repro.storage.delta import DeltaKind
from repro.storage.relation import Relation


def both_paths(expression, database, relation, kind, delta_rows, materialized=None):
    """Run the interpreted oracle and the vectorized engine side by side.

    Asserts the two produce identical insert/delete bags and that applying
    either to the old result reproduces recomputation, then returns the
    oracle's delta for fine-grained assertions.
    """
    old_result = evaluate(expression, database)
    oracle = differentiate(
        expression, database, relation, kind, delta_rows, materialized=materialized
    )
    vectorized = DifferentialEngine(database).differentiate(
        expression, relation, kind, delta_rows, materialized=materialized
    )
    assert vectorized.inserts.same_bag(oracle.inserts)
    assert vectorized.deletes.same_bag(oracle.deletes)
    updated = database.copy()
    updated.apply_update(relation, kind, delta_rows)
    recomputed = evaluate(expression, updated)
    incremental = old_result.apply_delta(inserts=oracle.inserts, deletes=oracle.deletes)
    assert incremental.same_bag(recomputed)
    return oracle


def check_invariant(expression, database, relation, kind, delta_rows, materialized=None):
    """Assert the differential invariant and return the computed delta."""
    old_result = evaluate(expression, database)
    delta = differentiate(expression, database, relation, kind, delta_rows, materialized=materialized)
    updated = database.copy()
    updated.apply_update(relation, kind, delta_rows)
    new_result = evaluate(expression, updated)
    incremental = old_result.apply_delta(inserts=delta.inserts, deletes=delta.deletes)
    assert incremental.same_bag(new_result)
    return delta


def sales_schema(db):
    return db.table("sales").schema


def join_expression():
    return Join(
        Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")]),
        BaseRelation("stores"),
        [("store_id", "st_id")],
    )


def test_base_relation_insert_delta(star_database):
    rows = Relation(sales_schema(star_database), [(7, 10, 100, 1, 5.0)])
    delta = check_invariant(BaseRelation("sales"), star_database, "sales", DeltaKind.INSERT, rows)
    assert len(delta.inserts) == 1 and len(delta.deletes) == 0


def test_base_relation_delete_delta(star_database):
    rows = Relation(sales_schema(star_database), [(1, 10, 100, 2, 20.0)])
    delta = check_invariant(BaseRelation("sales"), star_database, "sales", DeltaKind.DELETE, rows)
    assert len(delta.deletes) == 1 and len(delta.inserts) == 0


def test_unrelated_relation_gives_empty_delta(star_database):
    rows = Relation(star_database.table("stores").schema, [(103, "x", "y")])
    delta = differentiate(BaseRelation("sales"), star_database, "stores", DeltaKind.INSERT, rows)
    assert delta.is_empty


def test_select_delta_filters(star_database):
    expression = Select(BaseRelation("sales"), gt("amount", 25.0))
    rows = Relation(sales_schema(star_database), [(7, 10, 100, 1, 5.0), (8, 11, 100, 1, 50.0)])
    delta = check_invariant(expression, star_database, "sales", DeltaKind.INSERT, rows)
    assert len(delta.inserts) == 1  # only the 50.0 row passes the filter


def test_project_delta(star_database):
    expression = Project(BaseRelation("sales"), ["product_id", "amount"])
    rows = Relation(sales_schema(star_database), [(7, 12, 101, 1, 9.0)])
    delta = check_invariant(expression, star_database, "sales", DeltaKind.INSERT, rows)
    assert delta.inserts.rows == [(12, 9.0)]


def test_join_delta_on_fact_insert(star_database):
    rows = Relation(sales_schema(star_database), [(7, 10, 102, 3, 33.0)])
    delta = check_invariant(join_expression(), star_database, "sales", DeltaKind.INSERT, rows)
    assert len(delta.inserts) == 1


def test_join_delta_on_dimension_insert(star_database):
    products_schema = star_database.table("products").schema
    rows = Relation(products_schema, [(13, "doohickey", "toys", 3.0)])
    delta = check_invariant(join_expression(), star_database, "products", DeltaKind.INSERT, rows)
    assert delta.is_empty  # no sale references the new product yet


def test_join_delta_on_dimension_delete(star_database):
    products_schema = star_database.table("products").schema
    rows = Relation(products_schema, [(10, "widget", "tools", 10.0)])
    delta = check_invariant(join_expression(), star_database, "products", DeltaKind.DELETE, rows)
    assert len(delta.deletes) == 2  # sales 1 and 2 reference product 10


def test_join_delta_self_join_both_sides(star_database):
    # The same relation on both sides of a join: the paper's union-of-two-joins case.
    expression = Join(BaseRelation("sales"), BaseRelation("sales"), [("product_id", "product_id")])
    rows = Relation(sales_schema(star_database), [(7, 10, 102, 3, 33.0)])
    check_invariant(expression, star_database, "sales", DeltaKind.INSERT, rows)


def test_aggregate_delta_insert_updates_affected_group(star_database):
    expression = Aggregate(
        BaseRelation("sales"),
        ["store_id"],
        [AggregateSpec(AggregateFunc.SUM, "amount", "revenue"), AggregateSpec(AggregateFunc.COUNT, None, "n")],
    )
    rows = Relation(sales_schema(star_database), [(7, 10, 100, 1, 5.0)])
    delta = check_invariant(expression, star_database, "sales", DeltaKind.INSERT, rows)
    assert len(delta.deletes) == 1 and len(delta.inserts) == 1
    assert delta.deletes.rows[0][0] == 100 and delta.inserts.rows[0][0] == 100


def test_aggregate_delta_delete_can_remove_group(star_database):
    expression = Aggregate(
        BaseRelation("sales"), ["store_id"], [AggregateSpec(AggregateFunc.COUNT, None, "n")]
    )
    rows = Relation(sales_schema(star_database), [(4, 12, 102, 1, 30.0)])
    delta = check_invariant(expression, star_database, "sales", DeltaKind.DELETE, rows)
    # Store 102 had exactly one sale: the group disappears entirely.
    assert delta.deletes.rows == [(102, 1)]
    assert delta.inserts.rows == []


def test_aggregate_delta_min_max_under_delete(star_database):
    expression = Aggregate(
        BaseRelation("sales"), ["product_id"], [AggregateSpec(AggregateFunc.MAX, "amount", "peak")]
    )
    # Delete the current maximum for product 12 (amount 120).
    rows = Relation(sales_schema(star_database), [(6, 12, 100, 4, 120.0)])
    delta = check_invariant(expression, star_database, "sales", DeltaKind.DELETE, rows)
    assert (12, 120.0) in delta.deletes.rows
    assert (12, 30.0) in delta.inserts.rows


def test_aggregate_delta_uses_materialized_old_result(star_database):
    expression = Aggregate(
        BaseRelation("sales"), ["store_id"], [AggregateSpec(AggregateFunc.SUM, "amount", "revenue")]
    )
    registry = MaterializedRegistry()
    star_database.materialize_view("v_rev", evaluate(expression, star_database))
    registry.register(expression, "v_rev")
    rows = Relation(sales_schema(star_database), [(7, 10, 101, 1, 5.0)])
    delta = check_invariant(
        expression, star_database, "sales", DeltaKind.INSERT, rows, materialized=registry
    )
    assert len(delta.inserts) == 1


def test_scalar_aggregate_delta(star_database):
    expression = Aggregate(BaseRelation("sales"), [], [AggregateSpec(AggregateFunc.COUNT, None, "n")])
    rows = Relation(sales_schema(star_database), [(7, 10, 100, 1, 5.0)])
    delta = check_invariant(expression, star_database, "sales", DeltaKind.INSERT, rows)
    assert delta.deletes.rows == [(6,)] and delta.inserts.rows == [(7,)]


def test_union_delta(star_database):
    expression = UnionAll([BaseRelation("sales"), BaseRelation("sales")])
    rows = Relation(sales_schema(star_database), [(7, 10, 100, 1, 5.0)])
    delta = check_invariant(expression, star_database, "sales", DeltaKind.INSERT, rows)
    assert len(delta.inserts) == 2  # the inserted row appears in both branches


def test_difference_delta(star_database):
    expression = Difference(
        Project(BaseRelation("sales"), ["product_id"]),
        Project(Select(BaseRelation("sales"), gt("amount", 100.0)), ["product_id"]),
    )
    rows = Relation(sales_schema(star_database), [(7, 12, 100, 9, 999.0)])
    check_invariant(expression, star_database, "sales", DeltaKind.INSERT, rows)


def test_distinct_delta(star_database):
    expression = Distinct(Project(BaseRelation("sales"), ["store_id"]))
    # Insert a sale in a brand-new store: distinct gains a row.
    schema = sales_schema(star_database)
    star_database.apply_update("stores", DeltaKind.INSERT, Relation(star_database.table("stores").schema, [(103, "newtown", "east")]))
    rows = Relation(schema, [(7, 10, 103, 1, 5.0)])
    delta = check_invariant(expression, star_database, "sales", DeltaKind.INSERT, rows)
    assert delta.inserts.rows == [(103,)]


def test_distinct_delta_no_change_for_existing_value(star_database):
    expression = Distinct(Project(BaseRelation("sales"), ["store_id"]))
    rows = Relation(sales_schema(star_database), [(8, 10, 100, 1, 5.0)])
    delta = check_invariant(expression, star_database, "sales", DeltaKind.INSERT, rows)
    assert delta.is_empty


# ------------------------------------------------- aggregate delta regressions
#
# Scalar (no GROUP BY) aggregates and vanishing groups are the corner cases
# of _aggregate_delta: a scalar aggregate has a row even over an empty
# child (COUNT = 0, SUM/MIN/MAX/AVG = None), and a group whose last input
# row is deleted must emit its old aggregate row as a delete with no
# replacement.  Each case is checked on the interpreted oracle AND the
# vectorized engine via both_paths().


def empty_sales_database(star_database):
    database = Database()
    schema = star_database.table("sales").schema
    database.create_table(TableDef("sales", schema, ()), [])
    return database


def scalar_aggregates():
    return [
        AggregateSpec(AggregateFunc.COUNT, None, "n"),
        AggregateSpec(AggregateFunc.SUM, "amount", "total"),
        AggregateSpec(AggregateFunc.MAX, "amount", "peak"),
    ]


def test_scalar_aggregate_delta_over_empty_child(star_database):
    """First insert into an empty table replaces the (0, None, None) row."""
    database = empty_sales_database(star_database)
    expression = Aggregate(BaseRelation("sales"), [], scalar_aggregates())
    rows = Relation(database.table("sales").schema, [(1, 10, 100, 2, 20.0), (2, 11, 101, 1, 5.0)])
    delta = both_paths(expression, database, "sales", DeltaKind.INSERT, rows)
    assert delta.deletes.rows == [(0, None, None)]
    assert delta.inserts.rows == [(2, 25.0, 20.0)]


def test_scalar_aggregate_delta_back_to_empty_child(star_database):
    """Deleting every row returns the scalar aggregate to its empty-input row."""
    database = empty_sales_database(star_database)
    only_row = (1, 10, 100, 2, 20.0)
    database.apply_update(
        "sales", DeltaKind.INSERT, Relation(database.table("sales").schema, [only_row])
    )
    expression = Aggregate(BaseRelation("sales"), [], scalar_aggregates())
    rows = Relation(database.table("sales").schema, [only_row])
    delta = both_paths(expression, database, "sales", DeltaKind.DELETE, rows)
    assert delta.deletes.rows == [(1, 20.0, 20.0)]
    assert delta.inserts.rows == [(0, None, None)]


def test_grouped_aggregate_delta_over_empty_child(star_database):
    """A grouped aggregate over an empty child has no rows to delete."""
    database = empty_sales_database(star_database)
    expression = Aggregate(
        BaseRelation("sales"), ["store_id"], [AggregateSpec(AggregateFunc.COUNT, None, "n")]
    )
    rows = Relation(database.table("sales").schema, [(1, 10, 100, 2, 20.0)])
    delta = both_paths(expression, database, "sales", DeltaKind.INSERT, rows)
    assert delta.deletes.rows == []
    assert delta.inserts.rows == [(100, 1)]


def test_aggregate_delta_vanishing_group_over_join(star_database):
    """A group vanishes when its last contributing join rows are deleted."""
    expression = Aggregate(
        Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")]),
        ["p_category"],
        [AggregateSpec(AggregateFunc.SUM, "amount", "revenue")],
    )
    # Sales 4 and 6 are the only "toys" (product 12) rows.
    rows = Relation(
        sales_schema(star_database), [(4, 12, 102, 1, 30.0), (6, 12, 100, 4, 120.0)]
    )
    delta = both_paths(expression, star_database, "sales", DeltaKind.DELETE, rows)
    assert delta.deletes.rows == [("toys", 150.0)]
    assert delta.inserts.rows == []


def test_vectorized_engine_uses_materialized_old_aggregate(star_database):
    """The engine reads old aggregate rows from a registered stored view."""
    expression = Aggregate(
        BaseRelation("sales"), ["store_id"], [AggregateSpec(AggregateFunc.SUM, "amount", "revenue")]
    )
    registry = MaterializedRegistry()
    star_database.materialize_view("v_rev", evaluate(expression, star_database))
    registry.register(expression, "v_rev")
    rows = Relation(sales_schema(star_database), [(7, 10, 101, 1, 5.0)])
    delta = both_paths(
        expression, star_database, "sales", DeltaKind.INSERT, rows, materialized=registry
    )
    assert len(delta.inserts) == 1
