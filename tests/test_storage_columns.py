"""Column store backends and the Relation store lifecycle.

Covers the backend protocol both implementations must satisfy, the
invalidation chokepoint (satellite of the columnar-engine PR: a mutation
after a cached column read must never serve stale columns), and the store
hand-over APIs the database update path relies on.
"""

import pytest

from repro.catalog.schema import Schema
from repro.storage import columns as backends
from repro.storage.columns import PythonColumnStore, available_backends, forced_backend
from repro.storage.relation import Relation

SCHEMA = Schema.of(("a", "INTEGER"), ("b", "VARCHAR"), ("c", "DOUBLE"))
ROWS = [
    (1, "x", 1.5),
    (2, "y", -0.5),
    (2, None, 2.25),
    (None, "z", None),
]

BACKENDS = available_backends()


def _store(backend, rows=ROWS):
    with forced_backend(backend):
        return backends.active_backend().from_rows(rows, 3)


# ------------------------------------------------------------ backend protocol


@pytest.mark.parametrize("backend", BACKENDS)
def test_round_trip_preserves_rows_and_nulls(backend):
    store = _store(backend)
    assert len(store) == len(ROWS)
    assert store.arity == 3
    assert store.to_rows() == ROWS
    assert list(store.iter_rows()) == ROWS


@pytest.mark.parametrize("backend", BACKENDS)
def test_column_native_returns_python_values(backend):
    store = _store(backend)
    column = store.column_native(0)
    assert tuple(column) == (1, 2, 2, None)
    # Native values, not numpy scalars: ints hash/compare like dict keys.
    assert all(v is None or type(v) is int for v in column)


@pytest.mark.parametrize("backend", BACKENDS)
def test_take_reorders_columns_by_reference(backend):
    store = _store(backend)
    assert store.take([2, 0]).to_rows() == [(r[2], r[0]) for r in ROWS]


@pytest.mark.parametrize("backend", BACKENDS)
def test_gather_mask_concat_hstack(backend):
    store = _store(backend)
    assert store.gather([3, 1, 1]).to_rows() == [ROWS[3], ROWS[1], ROWS[1]]
    assert store.mask([True, False, True, False]).to_rows() == [ROWS[0], ROWS[2]]
    doubled = store.concat(store)
    assert doubled.to_rows() == ROWS + ROWS
    wide = store.hstack(store)
    assert wide.arity == 6
    assert wide.to_rows() == [r + r for r in ROWS]


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_store(backend):
    store = _store(backend, rows=[])
    assert len(store) == 0
    assert store.to_rows() == []
    assert store.mask([]).to_rows() == []


def test_numpy_mask_accepts_plain_bool_lists():
    if "numpy" not in BACKENDS:
        pytest.skip("numpy unavailable")
    store = _store("numpy")
    assert store.mask([False, True, False, True]).to_rows() == [ROWS[1], ROWS[3]]


def test_forced_backend_restores_previous():
    before = backends.active_backend()
    with forced_backend("python"):
        assert backends.active_backend() is PythonColumnStore
    assert backends.active_backend() is before


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        backends.set_active_backend("arrow")


# ------------------------------------------ invalidation regression (satellite)


@pytest.mark.parametrize("backend", BACKENDS)
def test_mutation_after_cached_column_read_never_serves_stale_columns(backend):
    with forced_backend(backend):
        relation = Relation(SCHEMA, list(ROWS))
        # Populate every derived representation a reader can cache.
        assert relation.column_at(0) == (1, 2, 2, None)
        assert relation.columns()[1] == ("x", "y", None, "z")
        assert relation.column_store() is not None
        relation.add((7, "w", 0.0))
        assert relation.column_at(0) == (1, 2, 2, None, 7)
        assert relation.columns()[1] == ("x", "y", None, "z", "w")
        assert relation.column_store().to_rows()[-1] == (7, "w", 0.0)
        relation.extend([(8, "v", 1.0)])
        assert relation.column_at(0)[-1] == 8
        assert relation.cached_store() is None or len(relation.cached_store()) == 6


# --------------------------------------------------------- store hand-over APIs


def test_adopt_store_validates_length():
    relation = Relation(SCHEMA, list(ROWS))
    short = PythonColumnStore.from_rows(ROWS[:2], 3)
    with pytest.raises(ValueError):
        relation.adopt_store(short)
    exact = PythonColumnStore.from_rows(ROWS, 3)
    relation.adopt_store(exact)
    assert relation.cached_store() is exact


def test_from_store_rows_are_lazy_and_identical():
    store = PythonColumnStore.from_rows(ROWS, 3)
    relation = Relation.from_store(SCHEMA, store)
    assert len(relation) == len(ROWS)
    assert list(relation.iter_rows()) == ROWS
    assert relation.rows == ROWS


@pytest.mark.parametrize("backend", BACKENDS)
def test_vector_store_gates(backend):
    with forced_backend(backend):
        relation = Relation(SCHEMA, list(ROWS))
        small = relation.vector_store(min_rows=100)
        assert small is None  # below the build threshold, never built
        store = relation.vector_store(min_rows=0)
        if backend == "numpy":
            assert store is not None and store.kind == "numpy"
            assert relation.has_vector_store
            # Cached stores are returned regardless of any later threshold.
            assert relation.vector_store(min_rows=10**6) is store
        else:
            assert store is None
            assert not relation.has_vector_store
