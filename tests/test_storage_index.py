"""Unit tests for hash and sorted indexes."""

import pytest

from repro.catalog.schema import Schema
from repro.storage.index import HashIndex, SortedIndex, build_index
from repro.storage.relation import Relation

SCHEMA = Schema.from_names(["k", "g", "v"])
ROWS = [(1, "a", 10), (2, "a", 20), (3, "b", 30), (2, "b", 40)]


@pytest.fixture
def relation():
    return Relation(SCHEMA, ROWS)


def test_hash_index_lookup(relation):
    index = HashIndex(relation, ["k"])
    assert sorted(index.lookup((2,))) == [(2, "a", 20), (2, "b", 40)]
    assert index.lookup((99,)) == []


def test_hash_index_contains_and_len(relation):
    index = HashIndex(relation, ["k"])
    assert (1,) in index
    assert (99,) not in index
    assert len(index) == 4
    assert index.distinct_keys == 3


def test_hash_index_positions(relation):
    index = HashIndex(relation, ["g"])
    assert index.lookup_positions(("a",)) == [0, 1]


def test_sorted_index_equality_lookup(relation):
    index = SortedIndex(relation, ["k"])
    assert sorted(index.lookup((2,))) == [(2, "a", 20), (2, "b", 40)]
    assert index.lookup((99,)) == []


def test_sorted_index_range_queries(relation):
    index = SortedIndex(relation, ["k"])
    assert sorted(index.range(low=(2,), high=(3,))) == [(2, "a", 20), (2, "b", 40), (3, "b", 30)]
    assert sorted(index.range(low=(2,), include_low=False)) == [(3, "b", 30)]
    assert sorted(index.range(high=(1,))) == [(1, "a", 10)]


def test_sorted_index_scan_order(relation):
    index = SortedIndex(relation, ["k"])
    keys = [row[0] for row in index.scan_sorted()]
    assert keys == sorted(keys)
    assert index.distinct_keys == 3
    assert len(index) == 4


def test_composite_key_index(relation):
    index = HashIndex(relation, ["k", "g"])
    assert index.lookup((2, "b")) == [(2, "b", 40)]


def test_build_index_factory(relation):
    assert isinstance(build_index(relation, ["k"], "hash"), HashIndex)
    assert isinstance(build_index(relation, ["k"], "btree"), SortedIndex)
    with pytest.raises(ValueError):
        build_index(relation, ["k"], "bitmap")
