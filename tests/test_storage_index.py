"""Unit tests for hash and sorted indexes."""

import pytest

from repro.catalog.schema import Schema
from repro.storage.index import HashIndex, SortedIndex, build_index
from repro.storage.relation import Relation

SCHEMA = Schema.from_names(["k", "g", "v"])
ROWS = [(1, "a", 10), (2, "a", 20), (3, "b", 30), (2, "b", 40)]


@pytest.fixture
def relation():
    return Relation(SCHEMA, ROWS)


def test_hash_index_lookup(relation):
    index = HashIndex(relation, ["k"])
    assert sorted(index.lookup((2,))) == [(2, "a", 20), (2, "b", 40)]
    assert index.lookup((99,)) == []


def test_hash_index_contains_and_len(relation):
    index = HashIndex(relation, ["k"])
    assert (1,) in index
    assert (99,) not in index
    assert len(index) == 4
    assert index.distinct_keys == 3


def test_hash_index_positions(relation):
    index = HashIndex(relation, ["g"])
    assert index.lookup_positions(("a",)) == [0, 1]


def test_sorted_index_equality_lookup(relation):
    index = SortedIndex(relation, ["k"])
    assert sorted(index.lookup((2,))) == [(2, "a", 20), (2, "b", 40)]
    assert index.lookup((99,)) == []


def test_sorted_index_range_queries(relation):
    index = SortedIndex(relation, ["k"])
    assert sorted(index.range(low=(2,), high=(3,))) == [(2, "a", 20), (2, "b", 40), (3, "b", 30)]
    assert sorted(index.range(low=(2,), include_low=False)) == [(3, "b", 30)]
    assert sorted(index.range(high=(1,))) == [(1, "a", 10)]


def test_sorted_index_scan_order(relation):
    index = SortedIndex(relation, ["k"])
    keys = [row[0] for row in index.scan_sorted()]
    assert keys == sorted(keys)
    assert index.distinct_keys == 3
    assert len(index) == 4


def test_composite_key_index(relation):
    index = HashIndex(relation, ["k", "g"])
    assert index.lookup((2, "b")) == [(2, "b", 40)]


def test_build_index_factory(relation):
    assert isinstance(build_index(relation, ["k"], "hash"), HashIndex)
    assert isinstance(build_index(relation, ["k"], "btree"), SortedIndex)
    with pytest.raises(ValueError):
        build_index(relation, ["k"], "bitmap")


# -------------------------------------------------- incremental maintenance
#
# apply_insert/apply_delete must leave the index indistinguishable from one
# rebuilt over the updated relation — same lookups, same lengths, and (for
# sorted indexes) the same scan order.


def assert_same_index(maintained, rebuilt, probe_keys):
    assert len(maintained) == len(rebuilt)
    assert maintained.distinct_keys == rebuilt.distinct_keys
    for key in probe_keys:
        assert sorted(maintained.lookup(key)) == sorted(rebuilt.lookup(key))


@pytest.mark.parametrize("kind", ["hash", "btree"])
def test_apply_insert_matches_rebuild(relation, kind):
    index = build_index(relation, ["k"], kind)
    appended = Relation(SCHEMA, ROWS + [(2, "c", 50), (9, "z", 60)])
    index.apply_insert(appended, start=len(ROWS))
    rebuilt = build_index(appended, ["k"], kind)
    assert_same_index(index, rebuilt, [(1,), (2,), (3,), (9,), (99,)])


@pytest.mark.parametrize("kind", ["hash", "btree"])
def test_apply_delete_matches_rebuild(relation, kind):
    index = build_index(relation, ["k"], kind)
    # Remove positions 1 and 2 ((2, "a", 20) and (3, "b", 30)): the survivors
    # shift down, so every retained entry's position must be remapped.
    shrunk = Relation(SCHEMA, [ROWS[0], ROWS[3]])
    index.apply_delete(shrunk, old_to_new=[0, None, None, 1])
    rebuilt = build_index(shrunk, ["k"], kind)
    assert_same_index(index, rebuilt, [(1,), (2,), (3,), (99,)])
    assert index.lookup((3,)) == []


def test_sorted_index_apply_insert_keeps_scan_order(relation):
    index = SortedIndex(relation, ["k"])
    appended = Relation(SCHEMA, ROWS + [(0, "q", 5), (2, "q", 45)])
    index.apply_insert(appended, start=len(ROWS))
    keys = [row[0] for row in index.scan_sorted()]
    assert keys == sorted(keys)


def test_retarget_keeps_positions(relation):
    index = HashIndex(relation, ["k"])
    replacement = Relation(SCHEMA, list(ROWS))
    index.retarget(replacement)
    assert sorted(index.lookup((2,))) == [(2, "a", 20), (2, "b", 40)]
