"""Behavior of the serving façade: ``Warehouse.serve()``.

Covers the session lifecycle (query/ingest/flush/close, context manager),
admission control under all three read policies, the SLO hard bound over
cost-based deferral, daemon crash surfacing, write-queue shedding, the
config knobs, and the ``explain_serving()`` trace.
"""

import pytest

from repro import (
    FreshnessSLO,
    Q,
    ServingClosedError,
    ServingError,
    StaleReadError,
    Warehouse,
    WarehouseConfig,
    WarehouseError,
)
from repro.catalog.schema import Schema
from repro.storage.delta import Delta, DeltaStore
from repro.storage.relation import Relation


def small_warehouse(**config_overrides):
    wh = Warehouse(WarehouseConfig.profile("fast", **config_overrides))
    wh.load(scale=0.05)
    wh.load_data(scale=0.002)
    wh.define_view(
        "v_rev",
        Q.table("lineitem").join("orders").join("customer").join("nation")
        .group_by("n_name")
        .sum("l_extendedprice", "revenue"),
    )
    wh.optimize()
    wh.apply(0.0)
    return wh


@pytest.fixture(scope="module")
def warehouse():
    return small_warehouse()


# ----------------------------------------------------------------- lifecycle

def test_serve_requires_loaded_views():
    wh = Warehouse(WarehouseConfig.profile("fast"))
    with pytest.raises(WarehouseError):
        wh.serve()
    wh.load(scale=0.05)
    wh.load_data(scale=0.002)
    with pytest.raises(WarehouseError, match="view"):
        wh.serve()


def test_query_before_any_ingest_serves_version_one(warehouse):
    with warehouse.serve() as session:
        served = session.query("v_rev")
        assert served.version == 1
        assert served.as_of_round == 0
        assert not served.degraded
        assert served.degraded_reason is None
        assert len(served) == len(served.relation)
        assert session.freshness("v_rev").fresh


def test_ingest_flush_publishes_new_versions(warehouse):
    with warehouse.serve() as session:
        before = session.query("v_rev")
        session.ingest(0.02)
        session.ingest(0.02)
        session.flush(timeout=60.0)
        after = session.query("v_rev")
        assert after.version > before.version
        assert after.as_of_round == 2
        assert session.as_of_round == 2
        assert session.reports, "a flush must leave a refresh report"


def test_closed_session_refuses_everything(warehouse):
    session = warehouse.serve()
    session.close()
    session.close()  # idempotent
    assert session.closed
    for call in (
        lambda: session.query("v_rev"),
        lambda: session.ingest(0.01),
        lambda: session.flush(),
        lambda: session.freshness("v_rev"),
        lambda: session.pin(),
    ):
        with pytest.raises(ServingClosedError):
            call()


def test_close_flushes_pending_rounds(warehouse):
    session = warehouse.serve()
    session.pause()
    session.ingest(0.02)
    session.ingest(0.02)
    session.resume()
    session.close()
    assert session.daemon.as_of_round == 2, "close() must drain and flush"
    assert not session.daemon.alive


def test_context_manager_error_path_does_not_flush(warehouse):
    with pytest.raises(RuntimeError, match="boom"):
        with warehouse.serve() as session:
            session.pause()
            session.ingest(0.02)
            raise RuntimeError("boom")
    assert session.closed
    assert session.daemon.as_of_round == 0, (
        "an aborted session must not apply pending ingests"
    )


def test_unknown_view_is_rejected_with_candidates(warehouse):
    with warehouse.serve() as session:
        with pytest.raises(WarehouseError, match="v_rev"):
            session.query("v_missing")
        with pytest.raises(WarehouseError, match="v_rev"):
            session.freshness("v_missing")


# ---------------------------------------------------------- admission control

def test_serve_stale_degrades_beyond_slo(warehouse):
    slo = FreshnessSLO(max_rounds=1)
    with warehouse.serve(read_policy="serve-stale", slo=slo) as session:
        session.pause()
        for _ in range(3):
            session.ingest(0.01)
        staleness = session.freshness("v_rev")
        assert staleness.rounds == 3
        served = session.query("v_rev")
        assert served.degraded
        assert "max_rounds=1" in served.degraded_reason
        assert session.degraded_reads == 1
        session.resume()
        session.flush(timeout=60.0)
        fresh = session.query("v_rev")
        assert not fresh.degraded


def test_reject_policy_sheds_stale_reads(warehouse):
    slo = FreshnessSLO(max_rounds=1)
    with warehouse.serve(read_policy="reject", slo=slo) as session:
        session.pause()
        session.ingest(0.01)
        session.ingest(0.01)
        with pytest.raises(StaleReadError, match="shed"):
            session.query("v_rev")
        assert session.rejected_reads == 1
        # A per-call policy override beats the session default.
        served = session.query("v_rev", read_policy="serve-stale")
        assert served.degraded
        session.resume()


def test_block_policy_waits_for_freshness(warehouse):
    slo = FreshnessSLO(max_rounds=1)
    with warehouse.serve(read_policy="block", slo=slo) as session:
        session.ingest(0.01)
        session.ingest(0.01)
        # No pause: the daemon is catching up; block waits it out.
        served = session.query("v_rev")
        assert not served.degraded
        assert served.staleness.rounds <= 1


def test_block_policy_degrades_after_timeout():
    wh = small_warehouse(serving_block_timeout_seconds=0.2)
    slo = FreshnessSLO(max_rounds=1)
    with wh.serve(read_policy="block", slo=slo) as session:
        session.pause()
        session.ingest(0.01)
        session.ingest(0.01)
        served = session.query("v_rev")
        assert served.degraded
        assert "still stale after blocking" in served.degraded_reason
        session.resume()


def test_per_view_slo_override_beats_default(warehouse):
    with warehouse.serve(
        read_policy="reject",
        slo=FreshnessSLO(max_rounds=1),
        slos={"v_rev": FreshnessSLO()},  # unbounded for this view
    ) as session:
        session.pause()
        session.ingest(0.01)
        session.ingest(0.01)
        served = session.query("v_rev")  # unbounded SLO: never shed
        assert not served.degraded
        session.resume()


def test_slos_for_unknown_view_rejected(warehouse):
    with pytest.raises(WarehouseError, match="v_rev"):
        warehouse.serve(slos={"v_missing": FreshnessSLO(max_rounds=1)})


# ------------------------------------------------- SLO over cost-based deferral

def test_freshness_slo_forces_flush_past_deferral(warehouse):
    """The scheduler defers tiny rounds; the SLO bound overrides it."""
    slo = FreshnessSLO(max_rounds=1)
    with warehouse.serve(slo=slo) as session:
        session.pause()
        session.ingest(0.01)
        session.ingest(0.01)
        session.resume()
        session.drain(timeout=60.0)
        stats = session.daemon.stats()
        assert stats.slo_overrides >= 1, (
            "two pending rounds against max_rounds=1 must force a refresh"
        )
        trace = session.explain_serving()
        assert "freshness SLO" in trace
        assert "[overrides defer" in trace


# ------------------------------------------------------------- failure modes

def test_daemon_crash_surfaces_into_client_calls(warehouse):
    session = warehouse.serve()
    try:
        original = session._warehouse._refresh_rounds

        def explode(*args, **kwargs):
            raise RuntimeError("disk on fire")

        session._warehouse._refresh_rounds = explode
        try:
            session.ingest(0.02)
            with pytest.raises(ServingError, match="disk on fire"):
                session.flush(timeout=60.0)
            # Every subsequent call keeps reporting the crash.
            with pytest.raises(ServingError, match="crashed"):
                session.ingest(0.02)
            with pytest.raises(ServingError, match="crashed"):
                session.freshness("v_rev")
        finally:
            session._warehouse._refresh_rounds = original
    finally:
        with pytest.raises(ServingError, match="crashed"):
            session.close()
    assert session.closed


def test_full_write_queue_sheds_ingests():
    wh = small_warehouse(serving_queue_capacity=2)
    with wh.serve() as session:
        session.pause()
        session.ingest(0.01)
        session.ingest(0.01)
        with pytest.raises(ServingError, match="shed"):
            session.ingest(0.01)
        assert session.shed_ingests == 1
        session.resume()


def test_ingest_validates_delta_batches(warehouse):
    with warehouse.serve() as session:
        schema = Schema.from_names(["x"])
        unknown = DeltaStore(["no_such_table"])
        unknown.set_delta(
            Delta("no_such_table", Relation(schema, [(1,)]), Relation(schema, []))
        )
        with pytest.raises(WarehouseError, match="no_such_table"):
            session.ingest(unknown)
        lopsided = DeltaStore(["nation"])
        lopsided.set_delta(
            Delta("nation", Relation(schema, [(1,)]), Relation(schema, []))
        )
        with pytest.raises(WarehouseError, match="arity"):
            session.ingest(lopsided)
        with pytest.raises(WarehouseError):
            session.ingest(object())


# ------------------------------------------------------------------- explain

def test_explain_serving_reports_the_whole_story(warehouse):
    with warehouse.serve(slo=FreshnessSLO(max_rounds=4)) as session:
        session.ingest(0.02)
        session.flush(timeout=60.0)
        session.query("v_rev")
        trace = session.explain_serving()
    assert "serving policy: serve-stale" in trace
    assert "≤4 rounds" in trace
    assert "daemon events:" in trace
    assert "published snapshot v" in trace
    assert "snapshots:" in trace
    assert "reads:" in trace


# -------------------------------------------------------------- config knobs

def test_serving_config_knobs_validated():
    for bad in (
        {"serving_read_policy": "optimistic"},
        {"serving_max_staleness_rounds": 0},
        {"serving_max_staleness_rows": -1},
        {"serving_max_staleness_seconds": 0.0},
        {"serving_queue_capacity": 0},
        {"serving_block_timeout_seconds": 0.0},
        {"serving_tick_seconds": -0.1},
    ):
        with pytest.raises((ValueError, WarehouseError)):
            WarehouseConfig(**bad)


def test_config_slo_knobs_become_the_default_slo():
    config = WarehouseConfig(
        serving_max_staleness_rounds=3,
        serving_max_staleness_rows=500,
        serving_max_staleness_seconds=1.5,
    )
    slo = config.make_freshness_slo()
    assert slo == FreshnessSLO(max_rounds=3, max_rows=500, max_seconds=1.5)
    assert not slo.unbounded


def test_session_defaults_come_from_config():
    wh = small_warehouse(
        serving_read_policy="reject", serving_max_staleness_rounds=2
    )
    with wh.serve() as session:
        assert session.read_policy == "reject"
        assert session.slo_for("v_rev") == FreshnessSLO(max_rounds=2)


def test_invalid_read_policy_rejected(warehouse):
    with pytest.raises(WarehouseError, match="read policy"):
        warehouse.serve(read_policy="optimistic")
