"""Tests for candidate enumeration."""

import pytest

from repro.maintenance.candidates import enumerate_candidates
from repro.maintenance.diff_dag import DifferentialAnnotations, ResultKey
from repro.maintenance.update_spec import UpdateSpec
from repro.optimizer.dag_builder import build_dag
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def catalog():
    return tpcd.tpcd_catalog(scale_factor=0.1)


@pytest.fixture(scope="module")
def prepared(catalog):
    views = queries.standalone_join_view()
    dag = build_dag(views, catalog)
    spec = UpdateSpec.uniform(0.1, ["customer", "lineitem", "nation", "orders"])
    annotations = DifferentialAnnotations(dag, catalog, spec)
    initial = {ResultKey(dag.roots[name].id, 0) for name in views}
    return dag, annotations, initial


def test_base_relations_never_offered_as_results(prepared, catalog):
    dag, annotations, initial = prepared
    candidates = enumerate_candidates(dag, catalog, annotations, initial)
    base_ids = {n.id for n in dag.equivalence_nodes if n.is_base_relation}
    for candidate in candidates:
        if candidate.kind == "result":
            assert candidate.node_id not in base_ids


def test_initial_views_not_reoffered(prepared, catalog):
    dag, annotations, initial = prepared
    candidates = enumerate_candidates(dag, catalog, annotations, initial)
    for candidate in candidates:
        if candidate.kind == "result":
            assert candidate.key not in initial


def test_differentials_only_with_flag(prepared, catalog):
    dag, annotations, initial = prepared
    without = enumerate_candidates(dag, catalog, annotations, initial, include_differentials=False)
    with_diffs = enumerate_candidates(dag, catalog, annotations, initial, include_differentials=True)
    assert all(c.key.is_full for c in without if c.kind == "result")
    assert any(c.kind == "result" and not c.key.is_full for c in with_diffs)
    assert len(with_diffs) > len(without)


def test_index_candidates_skip_existing_catalog_indexes(prepared, catalog):
    dag, annotations, initial = prepared
    candidates = enumerate_candidates(dag, catalog, annotations, initial)
    for candidate in candidates:
        if candidate.kind == "index":
            node = dag.node(candidate.node_id)
            if node.is_base_relation:
                relation = node.expression.canonical()
                assert not catalog.has_index_on(relation, candidate.columns)


def test_index_candidates_exist_for_views_and_fk_columns(prepared, catalog):
    dag, annotations, initial = prepared
    candidates = enumerate_candidates(dag, catalog, annotations, initial)
    index_targets = {(c.node_id, c.columns) for c in candidates if c.kind == "index"}
    root = dag.roots["v_order_details"]
    assert any(node_id == root.id for node_id, _ in index_targets), "view root should get index candidates"
    orders_node = next(n for n in dag.equivalence_nodes if n.key == "orders")
    assert (orders_node.id, ("o_custkey",)) in index_targets


def test_disable_index_candidates(prepared, catalog):
    dag, annotations, initial = prepared
    candidates = enumerate_candidates(dag, catalog, annotations, initial, include_indexes=False)
    assert all(c.kind == "result" for c in candidates)


def test_max_candidates_truncates(prepared, catalog):
    dag, annotations, initial = prepared
    candidates = enumerate_candidates(dag, catalog, annotations, initial, max_candidates=3)
    assert len(candidates) == 3
