"""Integration tests: the physical layer across the TPC-D-derived workload.

Checks the acceptance bar of the physical execution subsystem: every view of
the paper's fig3/fig4/fig5 workloads executes physically (strict mode, no
interpreter fallback) to exactly the interpreter's bag; view refresh and
multi-query execution run through the physical layer; forced materialization
produces plans with reuse steps that resolve to stored results.
"""

import pytest

from repro.engine.executor import MaterializedRegistry, evaluate
from repro.engine.physical import PhysicalExecutor, execute_plan
from repro.maintenance.maintainer import ViewRefresher, apply_and_refresh
from repro.mqo.greedy import MultiQueryOptimizer
from repro.mqo.sharing import execute_with_temporaries, shared_nodes
from repro.optimizer.dag_builder import DagBuilder
from repro.optimizer.volcano import VolcanoSearch
from repro.workloads import queries
from repro.workloads.datagen import TpcdDataGenerator
from repro.workloads.updategen import uniform_deltas


@pytest.fixture(scope="module")
def workload_database():
    """A fully populated (all eight tables) small TPC-D database."""
    return TpcdDataGenerator(scale_factor=0.001, seed=3).populate()


def workload_views():
    combined = {}
    combined.update(queries.standalone_join_view())
    combined.update(queries.standalone_agg_view())
    combined.update(queries.view_set_plain())
    combined.update(queries.view_set_aggregate())
    combined.update(queries.large_view_set())
    return combined


def test_entire_workload_executes_physically(workload_database):
    """Strict physical execution matches the interpreter on all 21 views."""
    executor = PhysicalExecutor(workload_database, strict=True)
    for name, expression in workload_views().items():
        logical = evaluate(expression, workload_database)
        physical = executor.evaluate(expression)
        assert physical.same_bag(logical), f"{name} diverged"
        assert physical.schema.names == logical.schema.names, f"{name} schema diverged"


def test_refresher_through_physical_layer(workload_database):
    """View refresh with physical (re)computation stays correct end to end."""
    database = workload_database.copy()
    views = queries.view_set_plain()
    deltas = uniform_deltas(database, 0.10, relations=["orders", "lineitem"], seed=5)
    report, verification = apply_and_refresh(
        database, views, deltas, recompute_views={"v_cust_orders"}, use_physical=True
    )
    assert all(verification.values()), f"stale views: {verification}"
    assert report.recomputed_views == ["v_cust_orders"]


def test_physical_and_logical_refresh_agree(workload_database):
    """use_physical=True and use_physical=False produce identical view bags."""
    views = queries.standalone_join_view()
    db_physical = workload_database.copy()
    db_logical = workload_database.copy()
    for database, use_physical in ((db_physical, True), (db_logical, False)):
        refresher = ViewRefresher(database, views, use_physical=use_physical)
        refresher.initialize_views()
    for name in views:
        assert db_physical.view(name).same_bag(db_logical.view(name))


def test_mqo_batch_executes_with_temporaries(workload_database):
    """The MQO plans execute physically and match per-query interpretation."""
    batch = queries.example_3_1_queries()
    mqo = MultiQueryOptimizer(workload_database.catalog)
    outcome = mqo.optimize(batch)
    results = execute_with_temporaries(workload_database, batch, outcome.plans)
    for name, expression in batch.items():
        assert results[name].same_bag(evaluate(expression, workload_database)), name
    # Temporaries were cleaned up.
    assert not any(v.startswith("e") for v in workload_database.view_names())


def test_forced_shared_materialization_is_reused(workload_database):
    """A plan extracted under a materialized set reads the stored result."""
    batch = queries.example_3_1_queries()
    builder = DagBuilder(workload_database.catalog)
    for name, expression in batch.items():
        builder.add_query(name, expression)
    dag = builder.finish()
    shared = [node for node in shared_nodes(dag) if node.id not in
              {root.id for root in dag.roots.values()}]
    assert shared, "expected a shared sub-expression between Q1 and Q2"
    target = shared[0]

    search = VolcanoSearch(dag, workload_database.catalog)
    outcome = search.optimize(materialized={target.id})
    plan = outcome.extract_plan(dag.roots["Q1"].id)
    reuse_steps = plan.reused_nodes()
    assert reuse_steps, "plan under materialization should contain a reuse step"

    registry = MaterializedRegistry()
    contents = evaluate(target.expression, workload_database)
    name = reuse_steps[0].view_name
    workload_database.materialize_view(name, contents)
    registry.register(target.expression, name)
    try:
        expected = evaluate(batch["Q1"], workload_database)
        result = execute_plan(
            plan, workload_database, registry, strict=True, output_schema=expected.schema
        )
        assert result.same_bag(expected)
    finally:
        workload_database.drop_view(name)
