"""Unit tests for multiset relations."""

import pytest

from repro.catalog.schema import Schema
from repro.storage.relation import Relation

SCHEMA = Schema.from_names(["a", "b"])


def make(rows):
    return Relation(SCHEMA, rows)


def test_arity_checked_on_construction():
    with pytest.raises(ValueError):
        Relation(SCHEMA, [(1,)])


def test_arity_checked_on_add():
    relation = make([])
    with pytest.raises(ValueError):
        relation.add((1, 2, 3))


def test_from_dicts_uses_schema_order():
    relation = Relation.from_dicts(SCHEMA, [{"b": 2, "a": 1}])
    assert relation.rows == [(1, 2)]


def test_union_all_keeps_duplicates():
    left = make([(1, 1), (1, 1)])
    right = make([(1, 1)])
    assert len(left.union_all(right)) == 3


def test_difference_removes_one_copy_per_match():
    relation = make([(1, 1), (1, 1), (2, 2)])
    result = relation.difference(make([(1, 1)]))
    assert sorted(result.rows) == [(1, 1), (2, 2)]


def test_difference_of_missing_tuple_is_noop():
    relation = make([(1, 1)])
    assert relation.difference(make([(9, 9)])).rows == [(1, 1)]


def test_apply_delta_deletes_then_inserts():
    relation = make([(1, 1), (2, 2)])
    updated = relation.apply_delta(inserts=make([(3, 3)]), deletes=make([(1, 1)]))
    assert sorted(updated.rows) == [(2, 2), (3, 3)]


def test_distinct_preserves_first_occurrence_order():
    relation = make([(2, 2), (1, 1), (2, 2)])
    assert relation.distinct().rows == [(2, 2), (1, 1)]


def test_project_keeps_duplicates():
    relation = make([(1, 5), (2, 5)])
    assert relation.project(["b"]).rows == [(5,), (5,)]


def test_select_by_predicate_function():
    relation = make([(1, 5), (2, 6)])
    assert relation.select(lambda row: row[1] > 5).rows == [(2, 6)]


def test_sorted_by():
    relation = make([(2, 1), (1, 2)])
    assert relation.sorted_by(["a"]).rows == [(1, 2), (2, 1)]


def test_same_bag_ignores_order_but_counts_duplicates():
    left = make([(1, 1), (2, 2), (1, 1)])
    right = make([(2, 2), (1, 1), (1, 1)])
    assert left.same_bag(right)
    assert not left.same_bag(make([(1, 1), (2, 2)]))


def test_incompatible_schemas_rejected():
    other = Relation(Schema.from_names(["x", "y", "z"]), [(1, 2, 3)])
    with pytest.raises(ValueError):
        make([(1, 1)]).union_all(other)


def test_copy_is_independent():
    original = make([(1, 1)])
    clone = original.copy()
    clone.add((2, 2))
    assert len(original) == 1


def test_counter_and_to_dicts():
    relation = make([(1, 2), (1, 2)])
    assert relation.counter()[(1, 2)] == 2
    assert relation.to_dicts() == [{"a": 1, "b": 2}, {"a": 1, "b": 2}]


def test_empty_like_copies_schema():
    relation = make([(1, 2)])
    empty = Relation.empty_like(relation)
    assert len(empty) == 0
    assert empty.schema.names == relation.schema.names


# ------------------------------------------------------------- columnar access

def test_columns_returns_one_array_per_schema_column():
    relation = make([(1, 10), (2, 20), (3, 30)])
    assert relation.columns() == ((1, 2, 3), (10, 20, 30))
    assert make([]).columns() == ((), ())


def test_column_values_and_column_at():
    relation = make([(1, 10), (2, 20)])
    assert relation.column_values("b") == (10, 20)
    assert relation.column_at(0) == (1, 2)
    with pytest.raises(IndexError):
        relation.column_at(5)


def test_column_cache_invalidated_on_mutation():
    relation = make([(1, 10)])
    assert relation.columns() == ((1,), (10,))
    assert relation.column_at(1) == (10,)
    relation.add((2, 20))
    assert relation.columns() == ((1, 2), (10, 20))
    assert relation.column_at(1) == (10, 20)


def test_from_columns_round_trip():
    relation = Relation.from_columns(Schema.from_names(["a", "b"]), [(1, 2), (10, 20)])
    assert relation.rows == [(1, 10), (2, 20)]


def test_from_columns_rejects_mismatches():
    schema = Schema.from_names(["a", "b"])
    with pytest.raises(ValueError):
        Relation.from_columns(schema, [(1, 2)])
    with pytest.raises(ValueError):
        Relation.from_columns(schema, [(1, 2), (10,)])


def test_from_trusted_rows_wraps_without_copying():
    rows = [(1, 10), (2, 20)]
    relation = Relation.from_trusted_rows(Schema.from_names(["a", "b"]), rows)
    assert relation.rows is rows
    assert relation.column_at(0) == (1, 2)
