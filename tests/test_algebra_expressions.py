"""Unit tests for logical expressions."""

import pytest

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Difference,
    Distinct,
    Join,
    Project,
    Select,
    UnionAll,
    base_relations,
    join_conditions,
    selection_conjuncts,
    walk,
)
from repro.algebra.predicates import eq, lt


def sample_join():
    return Join(
        Join(BaseRelation("A"), BaseRelation("B"), [("a_id", "b_id")]),
        BaseRelation("C"),
        [("b_id", "c_id")],
    )


def test_base_relation_canonical_is_name():
    assert BaseRelation("orders").canonical() == "orders"
    assert BaseRelation("orders").children() == ()


def test_join_commutativity_canonicalized():
    left = Join(BaseRelation("A"), BaseRelation("B"), [("a_id", "b_id")])
    right = Join(BaseRelation("B"), BaseRelation("A"), [("b_id", "a_id")])
    assert left == right
    assert hash(left) == hash(right)


def test_different_conditions_not_unified():
    one = Join(BaseRelation("A"), BaseRelation("B"), [("a_id", "b_id")])
    other = Join(BaseRelation("A"), BaseRelation("B"), [("a_x", "b_x")])
    assert one != other


def test_select_and_project_canonical_forms():
    select = Select(BaseRelation("A"), lt("a_val", 5))
    project = Project(BaseRelation("A"), ["a_id"])
    assert "select" in select.canonical()
    assert "project" in project.canonical()
    assert select != project


def test_aggregate_canonical_order_insensitive_to_spec_order():
    specs1 = [
        AggregateSpec(AggregateFunc.SUM, "v", "s"),
        AggregateSpec(AggregateFunc.COUNT, None, "c"),
    ]
    specs2 = list(reversed(specs1))
    agg1 = Aggregate(BaseRelation("A"), ["g"], specs1)
    agg2 = Aggregate(BaseRelation("A"), ["g"], specs2)
    assert agg1 == agg2


def test_union_requires_two_inputs():
    with pytest.raises(ValueError):
        UnionAll([BaseRelation("A")])


def test_union_canonical_order_insensitive():
    one = UnionAll([BaseRelation("A"), BaseRelation("B")])
    two = UnionAll([BaseRelation("B"), BaseRelation("A")])
    assert one == two


def test_difference_is_order_sensitive():
    one = Difference(BaseRelation("A"), BaseRelation("B"))
    two = Difference(BaseRelation("B"), BaseRelation("A"))
    assert one != two


def test_walk_visits_every_node():
    expression = Select(sample_join(), lt("a_val", 3))
    kinds = [type(node).__name__ for node in walk(expression)]
    assert kinds.count("Join") == 2
    assert kinds.count("BaseRelation") == 3
    assert kinds[0] == "Select"


def test_base_relations_collects_names():
    assert base_relations(sample_join()) == frozenset({"A", "B", "C"})


def test_join_conditions_collects_pairs():
    assert set(join_conditions(sample_join())) == {("a_id", "b_id"), ("b_id", "c_id")}


def test_selection_conjuncts_collects_predicates():
    expression = Select(Select(BaseRelation("A"), lt("x", 1)), eq("y", 2))
    assert len(selection_conjuncts(expression)) == 2


def test_distinct_and_labels():
    distinct = Distinct(BaseRelation("A"))
    assert "distinct" in distinct.canonical()
    assert BaseRelation("A").label == "A"
    assert sample_join().label.startswith("⋈")


def test_aggregate_func_distributive_flags():
    assert AggregateFunc.SUM.is_distributive
    assert AggregateFunc.COUNT.is_distributive
    assert AggregateFunc.AVG.is_distributive
    assert not AggregateFunc.MIN.is_distributive
    assert not AggregateFunc.MAX.is_distributive
