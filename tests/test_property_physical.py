"""Property-based tests: physical execution ≡ logical interpretation.

For randomly generated databases, update batches and view shapes, the
physical executor (optimizer-extracted plans compiled to vectorized
operators, run in strict mode with no interpreter fallback) must produce
exactly the same bags as the logical interpreter — before an update batch,
and again after the batch is applied to the base tables.  This is the
invariant that lets the physical layer execute the plans the optimizer
picks while ``evaluate`` stays the correctness oracle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Difference,
    Distinct,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import gt, le
from repro.catalog.schema import Schema, TableDef
from repro.engine.database import Database
from repro.engine.executor import evaluate
from repro.engine.physical import PhysicalExecutor
from repro.storage.delta import DeltaKind
from repro.storage.relation import Relation

FACT_SCHEMA = Schema.from_names(["f_id", "dim_id", "value"])
DIM_SCHEMA = Schema.from_names(["d_id", "d_group"])

fact_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=100),
    ),
    min_size=0,
    max_size=25,
)
dim_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=2)),
    min_size=0,
    max_size=8,
)
updated_relation = st.sampled_from(["fact", "dim"])
update_kind = st.sampled_from([DeltaKind.INSERT, DeltaKind.DELETE])


def make_database(facts, dims):
    database = Database()
    database.create_table(TableDef("fact", FACT_SCHEMA, ()), facts)
    database.create_table(TableDef("dim", DIM_SCHEMA, ()), dims)
    return database


def view_expressions():
    join = Join(BaseRelation("fact"), BaseRelation("dim"), [("dim_id", "d_id")])
    return [
        join,
        Select(join, gt("value", 40)),
        Project(join, ["d_group", "value"]),
        Aggregate(
            join,
            ["d_group"],
            [
                AggregateSpec(AggregateFunc.SUM, "value", "total"),
                AggregateSpec(AggregateFunc.COUNT, None, "n"),
                AggregateSpec(AggregateFunc.MAX, "value", "peak"),
            ],
        ),
        Aggregate(BaseRelation("fact"), [], [AggregateSpec(AggregateFunc.COUNT, None, "n")]),
        Distinct(Project(join, ["d_group"])),
        UnionAll(
            [
                Project(Select(join, gt("value", 60)), ["f_id", "value"]),
                Project(Select(join, le("value", 60)), ["f_id", "value"]),
            ]
        ),
        Difference(
            Project(BaseRelation("fact"), ["dim_id"]),
            Project(BaseRelation("dim"), ["d_id"]),
        ),
    ]


VIEW_COUNT = len(view_expressions())


def pick_delta(database, relation, kind, draw_rows):
    schema = database.table(relation).schema
    if kind is DeltaKind.DELETE:
        existing = database.table(relation).rows
        return Relation(schema, existing[: max(0, min(len(existing), len(draw_rows)))])
    if relation == "fact":
        rows = [(100 + i, r[1], r[2]) for i, r in enumerate(draw_rows)]
    else:
        rows = [(r[0], r[1] % 3) for r in draw_rows][:4]
    return Relation(schema, [row[: len(schema)] for row in rows])


@given(
    facts=fact_rows,
    dims=dim_rows,
    extra=fact_rows,
    relation=updated_relation,
    kind=update_kind,
    view_index=st.integers(min_value=0, max_value=VIEW_COUNT - 1),
)
@settings(max_examples=120, deadline=None)
def test_physical_execution_equals_interpreter(facts, dims, extra, relation, kind, view_index):
    database = make_database(facts, dims)
    expression = view_expressions()[view_index]
    executor = PhysicalExecutor(database, strict=True)

    before_logical = evaluate(expression, database)
    before_physical = executor.evaluate(expression)
    assert before_physical.same_bag(before_logical)
    assert before_physical.schema.names == before_logical.schema.names

    # Apply a random single-relation update batch and compare again: the
    # physical path must track base-table mutations exactly like the
    # interpreter (fresh executor, since statistics changed).
    delta_rows = pick_delta(database, relation, kind, extra)
    database.apply_update(relation, kind, delta_rows)
    after_logical = evaluate(expression, database)
    after_physical = PhysicalExecutor(database, strict=True).evaluate(expression)
    assert after_physical.same_bag(after_logical)


@given(facts=fact_rows, dims=dim_rows)
@settings(max_examples=40, deadline=None)
def test_physical_respects_materialized_reuse(facts, dims):
    """A registered shared result is read, not recomputed, by the physical plan."""
    from repro.engine.executor import MaterializedRegistry

    database = make_database(facts, dims)
    join = Join(BaseRelation("fact"), BaseRelation("dim"), [("dim_id", "d_id")])
    registry = MaterializedRegistry()
    contents = evaluate(join, database)
    database.materialize_view("t_join", contents)
    registry.register(join, "t_join")

    expression = Select(join, gt("value", 40))
    logical = evaluate(expression, database, registry)
    physical = PhysicalExecutor(database, strict=True).evaluate(expression, registry)
    assert physical.same_bag(logical)
