"""Unit tests for the system catalog."""

import pytest

from repro.catalog.catalog import Catalog, CatalogError, IndexDef
from repro.catalog.schema import Schema, TableDef
from repro.catalog.statistics import TableStats


@pytest.fixture
def catalog():
    cat = Catalog()
    schema = Schema.from_names(["o_orderkey", "o_custkey"])
    cat.register_table(
        TableDef("orders", schema, ("o_orderkey",), (("o_custkey", "customer", "c_custkey"),)),
        TableStats(1000.0, 16),
        create_pk_index=True,
    )
    return cat


def test_register_and_lookup_table(catalog):
    assert catalog.has_table("orders")
    assert catalog.table("orders").name == "orders"
    assert catalog.schema("orders").names == ("o_orderkey", "o_custkey")


def test_unknown_table_raises(catalog):
    with pytest.raises(CatalogError):
        catalog.table("missing")
    with pytest.raises(CatalogError):
        catalog.register_table_stats("missing", TableStats(1.0, 1))


def test_stats_lookup_and_default(catalog):
    assert catalog.stats("orders").cardinality == 1000.0
    schema = Schema.from_names(["x"])
    catalog.register_table(TableDef("nostats", schema))
    assert catalog.stats("nostats").cardinality > 0


def test_pk_index_created_on_registration(catalog):
    assert catalog.has_index_on("orders", ["o_orderkey"])
    assert len(catalog.indexes("orders")) == 1


def test_register_index_deduplicates(catalog):
    index = IndexDef("orders", ("o_custkey",), kind="hash")
    catalog.register_index(index)
    catalog.register_index(index)
    assert len(catalog.indexes("orders")) == 2


def test_drop_index(catalog):
    index = IndexDef("orders", ("o_custkey",), kind="hash")
    catalog.register_index(index)
    catalog.drop_index(index)
    assert not catalog.has_index_on("orders", ["o_custkey"])


def test_has_index_on_prefix_match(catalog):
    catalog.register_index(IndexDef("orders", ("o_custkey", "o_orderkey")))
    assert catalog.has_index_on("orders", ["o_custkey"])
    assert not catalog.has_index_on("orders", ["o_missing"])


def test_index_name_is_deterministic():
    index = IndexDef("orders", ("orders.o_custkey",))
    assert index.name == "idx_orders_o_custkey"


def test_foreign_keys_enumeration(catalog):
    assert catalog.foreign_keys() == [("orders", "o_custkey", "customer", "c_custkey")]


def test_copy_is_independent(catalog):
    clone = catalog.copy()
    clone.register_index(IndexDef("orders", ("o_custkey",)))
    assert not catalog.has_index_on("orders", ["o_custkey"])
    assert clone.has_index_on("orders", ["o_custkey"])


def test_scale_statistics(catalog):
    catalog.scale_statistics(0.5)
    assert catalog.stats("orders").cardinality == pytest.approx(500.0)
