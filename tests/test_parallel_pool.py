"""The shard pool: parallel execution and delta propagation vs the serial oracle.

Everything here is exact-equivalence testing: whatever the pool computes —
full evaluations, MQO-shared evaluations, per-shard differentials, multi-
batch warehouse sessions — must be **bag-identical** to the serial engine,
in both executor modes (forked workers and the in-process inline fallback).
"""

import os

import pytest

from repro import Warehouse, WarehouseConfig, WarehouseError
from repro.engine.differential import differentiate
from repro.engine.executor import evaluate
from repro.mqo.greedy import MultiQueryOptimizer
from repro.mqo.sharing import execute_with_temporaries
from repro.parallel import ShardPool, ShardPoolError, ShardSpec
from repro.storage.delta import DeltaKind
from repro.workloads import queries
from repro.workloads.datagen import TpcdDataGenerator
from repro.workloads.updategen import uniform_deltas

MODES = ["inline", "fork"]


def workload_views():
    combined = {}
    combined.update(queries.standalone_join_view())
    combined.update(queries.standalone_agg_view())
    combined.update(queries.view_set_plain())
    combined.update(queries.view_set_aggregate())
    combined.update(queries.large_view_set())
    return combined


@pytest.fixture(scope="module")
def database():
    return TpcdDataGenerator(scale_factor=0.001, seed=3).populate()


@pytest.fixture(params=MODES)
def pool(request, database):
    spec = ShardSpec.for_database(database, workers=2)
    with ShardPool(database, spec, mode=request.param) as shard_pool:
        yield shard_pool


# ------------------------------------------------------------------- evaluation

def test_evaluate_many_matches_serial_on_the_workload(pool, database):
    views = workload_views()
    results = pool.evaluate_many(list(views.items()))
    parallel = 0
    for name, expression in views.items():
        merged = results[name]
        if merged is None:
            assert not pool.plan(expression).parallel
            continue
        parallel += 1
        serial = evaluate(expression, database)
        assert merged.same_bag(serial), f"{name} diverged from serial"
        assert merged.schema.names == serial.schema.names
    assert parallel >= 15  # 18/21 workload views distribute


def test_serial_only_batch_returns_all_none(pool):
    results = pool.evaluate_many([("v", queries.large_view_set()["v05_part_supply"])])
    assert results == {"v": None}


def test_mqo_temporaries_shared_across_shards(pool, database):
    views = queries.view_set_plain()
    optimizer = MultiQueryOptimizer(database.catalog)
    result = optimizer.optimize(views)
    with_pool = execute_with_temporaries(database, views, result.plans, parallel=pool)
    serial = execute_with_temporaries(database, views, result.plans)
    for name in views:
        assert with_pool[name].same_bag(serial[name]), name


# ---------------------------------------------------------------- differentials

def test_parallel_differentials_match_the_serial_oracle(pool, database):
    views = workload_views()
    deltas = uniform_deltas(database, 0.05, relations=["lineitem"], seed=11)
    (delta,) = [d for d in deltas if d.relation == "lineitem"]
    assert len(delta.inserts)
    changes = pool.differentials(
        list(views.items()), "lineitem", DeltaKind.INSERT, delta.inserts
    )
    checked = 0
    for name, expression in views.items():
        change = changes[name]
        if change is None:
            continue  # aggregate/serial views keep their serial differential
        checked += 1
        oracle = differentiate(
            expression, database, "lineitem", DeltaKind.INSERT, delta.inserts
        )
        assert change.inserts.same_bag(oracle.inserts), name
        assert change.deletes.same_bag(oracle.deletes), name
    assert checked >= 10  # every concat-merge view took the parallel path


def test_apply_update_keeps_workers_in_step(pool, database):
    working = database.copy()
    spec = pool.spec
    with ShardPool(working, spec, mode=pool.mode) as shard_pool:
        expression = queries.standalone_join_view()["v_order_details"]
        deltas = uniform_deltas(working, 0.05, relations=["lineitem"], seed=13)
        (delta,) = [d for d in deltas if d.relation == "lineitem"]
        working.apply_update("lineitem", DeltaKind.INSERT, delta.inserts)
        shard_pool.apply_update("lineitem", DeltaKind.INSERT, delta.inserts)
        merged = shard_pool.evaluate(expression)
        assert merged.same_bag(evaluate(expression, working))


# --------------------------------------------------------------------- façade

def _session(workers):
    config = WarehouseConfig.profile("verify", workers=workers)
    wh = Warehouse(config).load(scale=0.1)
    wh.define_views(
        {
            "v_order_details": queries.standalone_join_view()["v_order_details"],
            "v_revenue_by_nation": queries.standalone_agg_view()["v_revenue_by_nation"],
        }
    )
    wh.optimize()
    wh.load_data(
        scale=0.001,
        seed=7,
        tables=["region", "nation", "supplier", "customer", "orders", "lineitem"],
    )
    return wh


def test_warehouse_workers_2_is_bag_identical_to_serial():
    serial = _session(workers=1)
    with _session(workers=2) as parallel:
        assert parallel.shard_pool() is not None
        for _ in range(2):
            serial.apply(0.05)
            parallel.apply(0.05)
        for name in serial.views:
            a = serial._database.view(name)
            b = parallel._database.view(name)
            assert a.same_bag(b), f"{name} diverged with workers=2"
        assert parallel.verify() == {name: True for name in parallel.views}


def test_load_data_invalidates_the_pool():
    with _session(workers=2) as wh:
        first = wh.shard_pool()
        wh.load_data(scale=0.001, seed=9, tables=["region", "nation", "supplier",
                                                  "customer", "orders", "lineitem"])
        second = wh.shard_pool()
        assert second is not first
        with pytest.raises(ShardPoolError):
            first.ping()


def test_workers_config_validation_and_env_pin(monkeypatch):
    with pytest.raises(WarehouseError):
        WarehouseConfig(workers=0)
    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert WarehouseConfig().workers == 3
    monkeypatch.setenv("REPRO_WORKERS", "many")
    with pytest.raises(WarehouseError):
        WarehouseConfig()
    monkeypatch.delenv("REPRO_WORKERS")
    assert WarehouseConfig().workers == 1


def test_single_worker_session_has_no_pool():
    # Pin workers=1 explicitly: the CI matrix runs this suite under a
    # REPRO_WORKERS=2 env default.
    wh = Warehouse(WarehouseConfig(workers=1)).load(scale=0.1)
    wh.load_data(scale=0.001, seed=7, tables=["region", "nation"])
    assert wh.shard_pool() is None


# ------------------------------------------------------------------- lifecycle

def test_closed_pool_rejects_requests(database):
    spec = ShardSpec.for_database(database, workers=2)
    shard_pool = ShardPool(database, spec, mode="inline")
    shard_pool.close()
    with pytest.raises(ShardPoolError):
        shard_pool.evaluate(queries.standalone_join_view()["v_order_details"])


def test_worker_errors_surface_with_tracebacks(database):
    from repro.algebra.expressions import BaseRelation

    spec = ShardSpec.for_database(database, workers=2)
    with ShardPool(database, spec, mode="fork") as shard_pool:
        plan = shard_pool.plan(queries.standalone_join_view()["v_order_details"])
        assert plan.parallel
        with pytest.raises(ShardPoolError):
            # An unknown relation only fails at worker execution time.
            shard_pool._request_all(("eval", [("bad", BaseRelation("no_such_table"))]))


def test_pool_mode_validation(database):
    spec = ShardSpec.for_database(database, workers=2)
    with pytest.raises(ValueError):
        ShardPool(database, spec, mode="threads")
