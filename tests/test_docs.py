"""The documentation cannot rot: README blocks execute, links resolve.

This runs the same checks as ``tools/check_docs.py`` (which the CI docs job
invokes as a script) inside the tier-1 suite, so a PR that changes the
public API without updating the README fails locally too.
"""

import importlib.util
import os

_TOOL = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools",
    "check_docs.py",
)
_spec = importlib.util.spec_from_file_location("check_docs", _TOOL)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_readme_has_python_blocks():
    blocks = check_docs.python_blocks("README.md")
    assert blocks, "README.md lost its executable quickstart"
    assert any("Warehouse" in block for block in blocks)


def test_readme_python_blocks_execute_verbatim():
    executed = check_docs.run_python_blocks("README.md")
    assert executed >= 2  # the quickstart and the streaming example


def test_intra_doc_links_resolve():
    broken = check_docs.check_links()
    assert not broken, "\n".join(broken)


def test_link_scan_ignores_code_fences():
    text = (
        "# Real heading\n"
        "```python\n"
        "# Phantom heading\n"
        "x = {}[1](2)\n"
        "```\n"
        "[ok](#real-heading)\n"
    )
    stripped = check_docs._without_fences(text)
    assert "Phantom" not in stripped
    assert check_docs._HEADING.findall(stripped) == ["Real heading"]
    assert check_docs._LINK.findall(stripped) == ["#real-heading"]


def test_github_anchor_slugs():
    assert check_docs._github_anchor("How a stream becomes a refresh") == (
        "how-a-stream-becomes-a-refresh"
    )
    assert check_docs._github_anchor("WarehouseConfig knobs") == "warehouseconfig-knobs"
