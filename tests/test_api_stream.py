"""Behavior of the streaming façade: ``Warehouse.stream()``.

Covers the session lifecycle (ingest/flush/close, context manager), the
policy decisions surfaced through ``explain_schedule()``, the config knobs,
and the end-to-end guarantee that a deferred coalesced session leaves the
database in the same state as an eager one fed the identical rounds.
"""

import pytest

from repro import (
    Q,
    StreamClosedError,
    StreamPolicy,
    Warehouse,
    WarehouseConfig,
    WarehouseError,
)
from repro.catalog.schema import Schema
from repro.storage.delta import Delta, DeltaStore
from repro.storage.relation import Relation
from repro.stream import StreamScheduler
from repro.workloads.updategen import generate_update_stream


def small_warehouse(**config_overrides):
    wh = Warehouse(WarehouseConfig.profile("fast", **config_overrides))
    wh.load(scale=0.05)
    wh.load_data(scale=0.002)
    wh.define_view(
        "v_rev",
        Q.table("lineitem").join("orders").join("customer").join("nation")
        .group_by("n_name")
        .sum("l_extendedprice", "revenue"),
    )
    wh.optimize()
    return wh


@pytest.fixture(scope="module")
def warehouse():
    return small_warehouse()


def fresh_session(wh, policy=None):
    # Re-materialize views so each test starts from a consistent state.
    wh.apply(0.0)
    return wh.stream(policy)


# ----------------------------------------------------------------- lifecycle

def test_coalescing_session_defers_then_flushes_on_close():
    wh = small_warehouse()
    with wh.stream() as session:
        for _ in range(3):
            decision = session.ingest(0.01)
            assert not decision.refreshes
        assert session.pending_batches == 3
        assert session.pending_rows > 0
    assert session.closed
    assert len(session.reports) == 1
    assert session.reports[0].rounds == 1  # coalesced into one round
    assert all(wh.verify().values())


def test_eager_policy_refreshes_every_ingest():
    wh = small_warehouse()
    with wh.stream("eager") as session:
        for _ in range(2):
            decision = session.ingest(0.01)
            assert decision.refreshes
    assert len(session.reports) == 2
    assert all(wh.verify().values())


def test_closed_session_rejects_ingest_and_flush(warehouse):
    session = fresh_session(warehouse)
    session.close()
    with pytest.raises(StreamClosedError):
        session.ingest(0.01)
    with pytest.raises(StreamClosedError):
        session.flush()
    # Closing twice is a no-op.
    assert session.close() is None


def test_flush_with_nothing_pending_returns_none(warehouse):
    session = fresh_session(warehouse)
    assert session.flush() is None
    assert session.skipped_flushes == 0
    session.close()


def test_ingest_rejects_bad_batch_type(warehouse):
    session = fresh_session(warehouse)
    with pytest.raises(WarehouseError, match="DeltaStore"):
        session.ingest("5 percent")
    session.close()


def test_ingest_rejects_unknown_relation_before_buffering(warehouse):
    session = fresh_session(warehouse)
    schema = Schema.from_names(["x"])
    bogus = DeltaStore(["linitem"])
    bogus.set_delta(Delta("linitem", Relation(schema, [(1,)]), Relation(schema, [])))
    # A typo'd relation is rejected at ingest time — a flush failure would
    # poison the session, so the bad round must never enter the buffer.
    with pytest.raises(WarehouseError, match="lineitem"):
        session.ingest(bogus)
    assert not session.closed and session.pending_batches == 0
    session.close()


def test_ingest_rejects_wrong_arity_before_buffering(warehouse):
    session = fresh_session(warehouse)
    bad = DeltaStore(["nation"])
    schema = Schema.from_names(["x"])  # nation has 4 columns
    bad.set_delta(Delta("nation", Relation(schema, [(1,)]), Relation(schema, [])))
    with pytest.raises(WarehouseError, match="arity"):
        session.ingest(bad)
    # Empty bags too: the pending buffer adopts the first round's bag as
    # its schema template, so a malformed empty bag must also be refused.
    sneaky = DeltaStore(["nation"])
    nation_schema = warehouse.database.table("nation").schema
    sneaky.set_delta(
        Delta(
            "nation",
            Relation(nation_schema, [tuple([None] * len(nation_schema))]),
            Relation(schema, []),  # empty, but with the wrong schema
        )
    )
    with pytest.raises(WarehouseError, match="arity"):
        session.ingest(sneaky)
    assert not session.closed and session.pending_batches == 0
    session.close()


def test_stream_rejects_unknown_policy(warehouse):
    with pytest.raises(WarehouseError, match="eager"):
        warehouse.stream("lazy")
    with pytest.raises(WarehouseError):
        warehouse.stream(42)


def test_stream_requires_views_and_wraps_policy_errors(warehouse):
    # A never-flushing caller-built policy surfaces as WarehouseError.
    with pytest.raises(WarehouseError, match="never trigger"):
        warehouse.stream(StreamPolicy.coalescing(cost_based=False))
    # No views defined: rejected at stream() like apply() does.
    empty = Warehouse(WarehouseConfig.profile("fast")).load_data(scale=0.002)
    with pytest.raises(WarehouseError, match="no views defined"):
        empty.stream()


# ------------------------------------------------------------ staleness bounds

def test_max_batches_bound_forces_flush():
    wh = small_warehouse(stream_max_batches=2)
    session = wh.stream()
    first = session.ingest(0.01)
    second = session.ingest(0.01)
    assert not first.refreshes
    assert second.refreshes
    assert "staleness bound" in second.reason
    assert len(session.reports) == 1
    session.close()


def test_max_rows_bound_forces_flush():
    wh = small_warehouse(stream_max_rows=1)
    session = wh.stream()
    decision = session.ingest(0.01)
    assert decision.refreshes
    assert "rows pending" in decision.reason
    session.close()


def test_config_policy_knobs_validate():
    with pytest.raises(WarehouseError, match="stream policy"):
        WarehouseConfig(stream_policy="sometimes")
    with pytest.raises(WarehouseError, match="stream_max_rows"):
        WarehouseConfig(stream_max_rows=0)
    with pytest.raises(WarehouseError, match="stream_max_batches"):
        WarehouseConfig(stream_max_batches=-1)
    with pytest.raises(WarehouseError, match="trigger a refresh"):
        WarehouseConfig(
            stream_cost_based=False, stream_max_rows=None, stream_max_batches=None
        )
    eager = WarehouseConfig(stream_policy="eager").make_stream_policy()
    assert eager.eager and not eager.coalesce
    coalescing = WarehouseConfig(stream_max_rows=10).make_stream_policy()
    assert coalescing.coalesce and coalescing.max_rows == 10


def test_stream_policy_bounds_validate():
    with pytest.raises(ValueError):
        StreamPolicy.coalescing(max_rows=0)
    with pytest.raises(ValueError):
        StreamPolicy.coalescing(max_batches=0)


# ----------------------------------------------------------- decision trace

def test_explain_schedule_renders_ticks_and_summary():
    wh = small_warehouse()
    session = wh.stream()
    session.ingest(0.01)
    session.ingest(0.01)
    text = session.explain_schedule()
    assert "stream policy: coalesce" in text
    assert "tick 1:" in text and "tick 2:" in text
    assert "defer" in text
    session.flush()
    text = session.explain_schedule()
    assert "flushes: 1" in text
    session.close()


def test_scheduler_rejects_policies_that_can_never_flush():
    # No cost model and no staleness bound: nothing could ever trigger a
    # refresh, so the scheduler refuses the configuration up front.
    with pytest.raises(ValueError, match="never trigger"):
        StreamScheduler(StreamPolicy.coalescing(cost_based=False))
    with pytest.raises(ValueError, match="never trigger"):
        StreamScheduler(StreamPolicy.coalescing(), round_cost=None)


def test_scheduler_without_cost_model_defers_within_bounds():
    scheduler = StreamScheduler(StreamPolicy.coalescing(max_batches=3))
    schema = Schema.from_names(["x"])
    one_row_store = DeltaStore(["r"])
    one_row_store.set_delta(
        Delta("r", Relation(schema, [(1,)]), Relation(schema, []))
    )
    assert scheduler.ingest(one_row_store).action == "defer"
    assert scheduler.ingest(one_row_store).action == "defer"
    assert scheduler.ingest(one_row_store).action == "refresh"


# ----------------------------------------------- deferred ≡ eager, end to end

def test_deferred_session_matches_eager_session_on_same_stream():
    wh_eager = small_warehouse()
    wh_deferred = small_warehouse()
    # One shared, pre-generated stream with insert/delete overlap, valid for
    # replay from the identical starting state both warehouses loaded.
    rounds = generate_update_stream(
        wh_eager.database, 0.02, rounds=4, relations=wh_eager.view_relations,
        overlap=0.5, seed=99,
    )
    wh_eager.apply(0.0)
    wh_deferred.apply(0.0)

    with wh_eager.stream("eager") as eager:
        for deltas in rounds:
            eager.ingest(deltas)
    with wh_deferred.stream() as deferred:
        for deltas in rounds:
            deferred.ingest(deltas)

    assert deferred.annihilated_rows > 0
    for table in wh_eager.view_relations:
        assert wh_eager.database.table(table).same_bag(
            wh_deferred.database.table(table)
        ), table
    assert wh_eager.database.view("v_rev").same_bag(wh_deferred.database.view("v_rev"))
    assert all(wh_eager.verify().values())
    assert all(wh_deferred.verify().values())


def test_failed_flush_poisons_session_and_keeps_rounds_inspectable(monkeypatch):
    wh = small_warehouse()
    session = wh.stream()
    session.ingest(0.02)
    assert session.pending_rows > 0

    def boom(rounds, **kwargs):
        raise WarehouseError("refresh exploded")

    monkeypatch.setattr(wh, "_refresh_rounds", boom)
    with pytest.raises(WarehouseError, match="exploded"):
        session.flush()
    # The refresh is non-transactional, so retrying could double-apply:
    # the session is poisoned, with the rounds readable for diagnosis.
    assert session.closed
    assert session.failed_rounds and session.failed_rounds[0].total_rows() > 0
    assert len(session.reports) == 0
    with pytest.raises(StreamClosedError):
        session.flush()
    with pytest.raises(StreamClosedError):
        session.ingest(0.01)


def test_key_sequences_survive_flushes_without_reuse():
    wh = small_warehouse()
    session = wh.stream()
    # Big generated batches whose deletes shrink the tables below the key
    # high-water mark; a second generated ingest after the flush must not
    # re-issue keys that the first round already used.
    session.ingest(0.2)
    session.flush()
    session.ingest(0.2)
    session.flush()
    session.close()
    for table in ("orders", "customer"):
        keys = [row[0] for row in wh.database.table(table).rows]
        assert len(keys) == len(set(keys)), f"duplicate primary keys in {table}"
    assert all(wh.verify().values())


def test_mixed_deltastore_and_generated_ingests_share_key_space():
    from repro.workloads.updategen import uniform_deltas

    wh = small_warehouse()
    session = wh.stream()
    # A caller-supplied store's inserts (which continue the key sequence at
    # len(table)) must push the generated path's high-water mark forward.
    session.ingest(uniform_deltas(wh.database, 0.10, relations=wh.view_relations))
    session.ingest(0.10)
    session.flush()
    session.close()
    for table in ("orders", "customer"):
        keys = [row[0] for row in wh.database.table(table).rows]
        assert len(keys) == len(set(keys)), f"duplicate primary keys in {table}"
    assert all(wh.verify().values())


def test_generated_ingests_never_delete_a_tuple_twice():
    wh = small_warehouse()
    session = wh.stream()
    # Deferred generated rounds: the exclusion bookkeeping must keep every
    # coalesced delete satisfiable against the stored base tables.
    for _ in range(3):
        session.ingest(0.03)
    report = session.flush()
    assert report is not None
    assert all(wh.verify().values())
    session.close()


# ------------------------------------------------- lifecycle mutual exclusion

def test_close_is_idempotent():
    wh = small_warehouse()
    session = wh.stream()
    session.ingest(0.02)
    report = session.close()
    assert report is not None, "the first close performs the final flush"
    assert session.close() is None, "a second close is a no-op"
    assert session.closed


def test_flush_after_close_raises_deterministically():
    wh = small_warehouse()
    session = wh.stream()
    session.ingest(0.02)
    session.close()
    with pytest.raises(StreamClosedError):
        session.flush()


def test_racing_flush_and_close_never_double_flush():
    """A flush racing a close either completes or raises StreamClosedError.

    The session mutex serializes the two, so whatever the interleaving the
    pending rounds are applied exactly once — the database ends verified
    and the flush/close reports account for every ingested round between
    them, with no torn pending state.
    """
    import threading  # tests are outside the REPRO-L009 lint scope

    wh = small_warehouse()
    session = wh.stream()
    for _ in range(3):
        session.ingest(0.02)

    barrier = threading.Barrier(2)
    outcomes = {}

    def do_flush():
        barrier.wait()
        try:
            outcomes["flush"] = session.flush()
        except StreamClosedError:
            outcomes["flush"] = "closed"

    def do_close():
        barrier.wait()
        outcomes["close"] = session.close()

    flusher = threading.Thread(target=do_flush)
    closer = threading.Thread(target=do_close)
    flusher.start()
    closer.start()
    flusher.join(timeout=60.0)
    closer.join(timeout=60.0)

    assert session.closed
    reports = [r for r in (outcomes.get("flush"), outcomes.get("close"))
               if r not in (None, "closed")]
    # Exactly one of the two applied the pending rounds (whichever won the
    # mutex); the pending state is gone either way.
    assert len(reports) == 1, outcomes
    # Coalescing may merge the three ingested rounds into fewer flush rounds,
    # but whoever won the mutex applied them all.
    assert reports[0].rounds >= 1
    assert reports[0].base_rows_applied > 0
    assert session.pending_batches == 0
    assert all(wh.verify().values())
