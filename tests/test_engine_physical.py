"""Unit tests for the physical execution subsystem.

Covers plan compilation (per-node join algorithms, reuse resolution through
the materialized registry), the end-to-end ``evaluate``-shaped entry point,
schema conformance after join reassociation, and strict-mode failures.
"""

import pytest

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Difference,
    Distinct,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import eq, gt, lit
from repro.engine.executor import MaterializedRegistry, evaluate
from repro.engine.physical import (
    Filter,
    HashJoin,
    IndexNestedLoopJoin,
    MaterializedScan,
    MergeJoin,
    NestedLoopJoin,
    PhysicalExecutor,
    PhysicalPlanError,
    TableScan,
    compile_plan,
    evaluate_physical,
    execute_plan,
)
from repro.optimizer.dag import Operator, OperatorKind
from repro.optimizer.plans import PlanNode, reuse_plan
from repro.storage.relation import Relation


def scan_plan(table: str, node_id: int = 0) -> PlanNode:
    return PlanNode(
        description=f"scan({table})",
        node_id=node_id,
        cost=1.0,
        cardinality=1.0,
        algorithm="scan",
        operator=Operator(OperatorKind.SCAN, relation=table),
        expression=BaseRelation(table),
    )


def join_plan(algorithm: str, conditions=(("product_id", "p_id"),)) -> PlanNode:
    return PlanNode(
        description="⋈",
        node_id=10,
        cost=1.0,
        cardinality=6.0,
        algorithm=algorithm,
        operator=Operator(OperatorKind.JOIN, conditions=tuple(conditions)),
        children=[scan_plan("sales", 1), scan_plan("products", 2)],
        expression=Join(BaseRelation("sales"), BaseRelation("products"), list(conditions)),
    )


# ----------------------------------------------------------------- compilation

def test_scan_compiles_to_table_scan(star_database):
    pipeline = compile_plan(scan_plan("sales"), star_database, strict=True)
    assert isinstance(pipeline, TableScan)
    assert len(pipeline.execute()) == 6


@pytest.mark.parametrize(
    "algorithm, operator_type",
    [
        ("hash", HashJoin),
        ("merge", MergeJoin),
        ("nested_loop", NestedLoopJoin),
        ("index_nested_loop_right", IndexNestedLoopJoin),
        ("index_nested_loop_left", IndexNestedLoopJoin),
        ("", HashJoin),  # unspecified algorithms default to hash join
    ],
)
def test_every_join_algorithm_executes_identically(star_database, algorithm, operator_type):
    plan = join_plan(algorithm)
    pipeline = compile_plan(plan, star_database, strict=True)
    assert isinstance(pipeline, operator_type)
    expected = evaluate(plan.expression, star_database)
    assert pipeline.execute().same_bag(expected)


def test_index_nested_loop_left_preserves_column_order(star_database):
    # The stored/indexed side is the LEFT child; output must still be
    # left ++ right like every other join operator.
    plan = join_plan("index_nested_loop_left")
    result = compile_plan(plan, star_database, strict=True).execute()
    assert result.schema.names[:5] == ("sale_id", "product_id", "store_id", "quantity", "amount")
    assert result.same_bag(evaluate(plan.expression, star_database))


def test_filter_and_aggregate_compile(star_database):
    select_node = PlanNode(
        description="σ",
        node_id=3,
        cost=1.0,
        cardinality=3.0,
        algorithm="filter",
        operator=Operator(OperatorKind.SELECT, predicate=gt("amount", 25.0)),
        children=[scan_plan("sales")],
        expression=Select(BaseRelation("sales"), gt("amount", 25.0)),
    )
    pipeline = compile_plan(select_node, star_database, strict=True)
    assert isinstance(pipeline, Filter)
    assert pipeline.execute().same_bag(evaluate(select_node.expression, star_database))


# ------------------------------------------------------------------ reuse

def test_reuse_resolves_through_view_name(star_database):
    stored = Relation(star_database.table("sales").schema, [(9, 9, 9, 9, 9.0)])
    star_database.materialize_view("t_shared", stored)
    plan = reuse_plan(5, "t_shared", 0.1, star_database.catalog.stats("sales"))
    pipeline = compile_plan(plan, star_database, strict=True)
    assert isinstance(pipeline, MaterializedScan)
    assert pipeline.execute().same_bag(stored)


def test_reuse_resolves_through_registry(star_database):
    expression = Select(BaseRelation("sales"), gt("amount", 25.0))
    contents = evaluate(expression, star_database)
    star_database.materialize_view("t_reg", contents)
    registry = MaterializedRegistry()
    registry.register(expression, "t_reg")
    plan = reuse_plan(
        5, "e5", 0.1, star_database.catalog.stats("sales"), expression=expression
    )
    pipeline = compile_plan(plan, star_database, registry, strict=True)
    assert isinstance(pipeline, MaterializedScan)
    assert pipeline.view_name == "t_reg"


def test_unresolvable_reuse_raises_in_strict_mode(star_database):
    plan = reuse_plan(5, "missing_view", 0.1, star_database.catalog.stats("sales"))
    with pytest.raises(PhysicalPlanError):
        compile_plan(plan, star_database, strict=True)


def test_unresolvable_reuse_falls_back_to_logical(star_database):
    expression = BaseRelation("sales")
    plan = reuse_plan(
        5, "missing_view", 0.1, star_database.catalog.stats("sales"), expression=expression
    )
    result = execute_plan(plan, star_database)
    assert result.same_bag(star_database.table("sales"))


# ------------------------------------------------------------- end-to-end path

STAR_EXPRESSIONS = [
    BaseRelation("sales"),
    Select(BaseRelation("sales"), gt("amount", 25.0)),
    Project(BaseRelation("sales"), ["product_id", "amount"]),
    Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")]),
    Select(
        Join(
            Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")]),
            BaseRelation("stores"),
            [("store_id", "st_id")],
        ),
        eq("st_region", lit("north")),
    ),
    Aggregate(
        Join(BaseRelation("sales"), BaseRelation("stores"), [("store_id", "st_id")]),
        ["st_region"],
        [
            AggregateSpec(AggregateFunc.SUM, "amount", "revenue"),
            AggregateSpec(AggregateFunc.COUNT, None, "n"),
            AggregateSpec(AggregateFunc.AVG, "quantity", "avg_qty"),
        ],
    ),
    Distinct(Project(BaseRelation("sales"), ["product_id"])),
    UnionAll(
        [
            Project(BaseRelation("sales"), ["product_id"]),
            Project(BaseRelation("products"), ["p_id"]),
        ]
    ),
    Difference(
        Project(BaseRelation("sales"), ["store_id"]),
        Project(BaseRelation("stores"), ["st_id"]),
    ),
]


@pytest.mark.parametrize("expression", STAR_EXPRESSIONS, ids=lambda e: e.canonical()[:48])
def test_evaluate_physical_matches_interpreter(star_database, expression):
    logical = evaluate(expression, star_database)
    physical = evaluate_physical(expression, star_database, strict=True)
    assert physical.same_bag(logical)
    # Column order must match the logical schema exactly, not just the bag.
    assert physical.schema.names == logical.schema.names


def test_physical_executor_uses_materialized_views(star_database):
    expression = Join(
        BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")]
    )
    registry = MaterializedRegistry()
    # Materialize a *wrong* result under the registered name: if the physical
    # path really reuses the view, we will see the marker bag.
    marker = Relation(
        star_database.table("sales").schema.concat(star_database.table("products").schema),
        [],
    )
    star_database.materialize_view("v_joined", marker)
    registry.register(expression, "v_joined")
    result = evaluate_physical(expression, star_database, registry, strict=True)
    assert len(result) == 0


def test_plan_cache_reused(star_database):
    executor = PhysicalExecutor(star_database, strict=True)
    expression = Join(
        BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")]
    )
    first_plan, _ = executor.plan(expression)
    second_plan, _ = executor.plan(expression)
    assert first_plan is second_plan


def test_strict_mode_raises_for_unknown_relation(star_database):
    with pytest.raises(PhysicalPlanError):
        evaluate_physical(BaseRelation("nonexistent"), star_database, strict=True)


def test_non_strict_falls_back_for_unknown_catalog_entries(star_database):
    # A view over a relation the catalog does not know cannot be planned,
    # but the non-strict path still executes it through the interpreter.
    extra = Relation(star_database.table("stores").schema, [(900, "x", "west")])
    star_database.materialize_view("aux_stores", extra)
    expression = BaseRelation("aux_stores")
    result = evaluate_physical(expression, star_database)
    assert result.same_bag(extra)


# ------------------------------------------- review regressions (edge semantics)

def test_union_of_permuted_same_name_branches_stays_positional(star_database):
    # Union is positional: branches carrying the same column names in a
    # different order must NOT be reordered to match each other.
    expression = UnionAll(
        [
            Project(BaseRelation("sales"), ["product_id", "store_id"]),
            Project(BaseRelation("sales"), ["store_id", "product_id"]),
        ]
    )
    logical = evaluate(expression, star_database)
    physical = evaluate_physical(expression, star_database, strict=True)
    assert physical.same_bag(logical)


def test_reuse_step_naming_a_base_table_scans_it(star_database):
    plan = reuse_plan(5, "products", 0.1, star_database.catalog.stats("products"))
    pipeline = compile_plan(plan, star_database, strict=True)
    assert isinstance(pipeline, TableScan)
    assert pipeline.execute().same_bag(star_database.table("products"))


def test_plan_cache_invalidated_by_registry_rebinding(star_database):
    # Re-registering the same view name for a different expression must not
    # replay a cached reuse plan against the re-purposed view.
    executor = PhysicalExecutor(star_database, strict=True)
    join = Join(BaseRelation("sales"), BaseRelation("products"), [("product_id", "p_id")])
    query = Select(join, gt("amount", 25.0))

    registry = MaterializedRegistry()
    contents = evaluate(join, star_database)
    star_database.materialize_view("t_slot", contents)
    registry.register(join, "t_slot")
    first = executor.evaluate(query, registry)
    assert first.same_bag(evaluate(query, star_database, registry))

    # Re-purpose the slot for a different expression.
    registry.unregister(join)
    other = Select(join, gt("amount", 1000.0))
    star_database.materialize_view("t_slot", evaluate(other, star_database))
    registry.register(other, "t_slot")
    second = executor.evaluate(query, registry)
    assert second.same_bag(evaluate(query, star_database))


def test_index_nested_loop_sorted_probe_with_none_key(star_database):
    # Outer probe keys containing None must not crash the sorted-index probe
    # path; they simply match nothing (a btree cannot hold None keys).
    sales = star_database.table("sales")
    with_null = Relation(sales.schema, list(sales.rows) + [(7, None, 100, 1, 5.0)])
    star_database.load_table("sales", with_null)
    try:
        plan = join_plan("index_nested_loop_right")
        result = compile_plan(plan, star_database, strict=True).execute()
        expected = evaluate(plan.expression, star_database)
        assert result.same_bag(expected)
    finally:
        star_database.load_table("sales", Relation(sales.schema, sales.rows))


def test_conform_preserves_duplicate_column_names(star_database):
    from repro.catalog.schema import Column, ColumnType, Schema
    from repro.engine.physical import _conform

    produced = Relation(
        Schema.of(
            Column("b", ColumnType.INTEGER),
            Column("id", ColumnType.INTEGER),
            Column("a", ColumnType.INTEGER),
            Column("id", ColumnType.INTEGER),
        ),
        [(10, 1, 20, 2)],
    )
    expected = Schema.of(
        Column("a", ColumnType.INTEGER),
        Column("id", ColumnType.INTEGER),
        Column("b", ColumnType.INTEGER),
        Column("id", ColumnType.INTEGER),
    )
    conformed = _conform(produced, expected)
    # Occurrence-order mapping: both distinct 'id' values survive.
    assert conformed.rows == [(20, 1, 10, 2)]
