"""Tests for the static expression analyzer (``repro.analysis.typecheck``).

Three layers of guarantees:

* every negative path produces the documented ``REPRO-A0xx`` code with an
  actionable hint (unknown relation/column, ambiguity, type mismatches,
  non-numeric aggregates, set-operation shape errors, duplicate aliases);
* the analyzer is conservative — every expression of every supported
  workload analyzes with zero diagnostics, so turning analysis on can never
  reject a working pipeline;
* the façade integration: ``Warehouse.define_view`` and ``Q.build`` surface
  analyzer/structural errors as :class:`WarehouseError` with the code and
  hint in the message, and ``Warehouse.provenance`` exposes the column
  provenance records.
"""

import pytest

from repro import Q, Warehouse, WarehouseConfig, WarehouseError
from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Difference,
    Join,
    Project,
    Select,
    UnionAll,
)
from repro.algebra.predicates import eq, lit
from repro.analysis import (
    CODES,
    SEVERITIES,
    analyze,
    compatible_types,
    provenance,
    structural_diagnostics,
)
from repro.catalog.schema import ColumnType
from repro.workloads import queries


SALES = BaseRelation("sales")
PRODUCTS = BaseRelation("products")
STORES = BaseRelation("stores")


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


def assert_well_formed(diagnostics):
    """Every emitted diagnostic uses a documented code and severity."""
    for d in diagnostics:
        assert d.code in CODES, d
        assert d.severity in SEVERITIES, d
        assert d.message
        assert d.hint


# ------------------------------------------------------------ negative paths

def test_unknown_relation_is_a001_with_near_miss(star_catalog):
    result = analyze(BaseRelation("salez"), star_catalog)
    assert not result.ok
    assert result.columns is None
    (diag,) = result.errors
    assert diag.code == "REPRO-A001"
    assert "sales" in diag.hint
    assert_well_formed(result.diagnostics)


def test_unknown_column_is_a002_with_near_miss(star_catalog):
    result = analyze(Project(SALES, ("amout",)), star_catalog)
    (diag,) = result.errors
    assert diag.code == "REPRO-A002"
    assert "amount" in diag.hint
    assert "project" in diag.path
    assert_well_formed(result.diagnostics)


def test_ambiguous_column_is_a003():
    # Ambiguity needs qualified names sharing an unqualified suffix, the
    # shape Schema.index_of's suffix matching resolves (or refuses).
    from repro.catalog.catalog import Catalog
    from repro.catalog.schema import Column, Schema, TableDef

    catalog = Catalog()
    schema = Schema.of(
        Column("a.key", ColumnType.INTEGER), Column("b.key", ColumnType.INTEGER)
    )
    catalog.register_table(TableDef("pairs", schema, ("a.key",)))
    result = analyze(Project(BaseRelation("pairs"), ("key",)), catalog)
    (diag,) = result.errors
    assert diag.code == "REPRO-A003"
    assert "qualify" in diag.hint
    assert_well_formed(result.diagnostics)


def test_type_mismatched_comparison_is_a004(star_catalog):
    result = analyze(Select(SALES, eq("amount", lit("north"))), star_catalog)
    (diag,) = result.errors
    assert diag.code == "REPRO-A004"
    assert "float" in diag.message and "string" in diag.message
    assert_well_formed(result.diagnostics)


def test_type_mismatched_join_is_a005(star_catalog):
    result = analyze(Join(SALES, PRODUCTS, [("amount", "p_name")]), star_catalog)
    (diag,) = result.errors
    assert diag.code == "REPRO-A005"
    assert "float" in diag.message and "string" in diag.message
    assert "comparable types" in diag.hint
    assert_well_formed(result.diagnostics)


def test_aggregate_of_non_numeric_column_is_a006(star_catalog):
    bad = Aggregate(
        PRODUCTS,
        ["p_category"],
        [AggregateSpec(AggregateFunc.SUM, "p_name", "total")],
    )
    result = analyze(bad, star_catalog)
    (diag,) = result.errors
    assert diag.code == "REPRO-A006"
    assert "string" in diag.message
    assert "integer or float" in diag.hint
    assert_well_formed(result.diagnostics)


def test_count_and_min_max_accept_any_type(star_catalog):
    ok = Aggregate(
        PRODUCTS,
        ["p_category"],
        [
            AggregateSpec(AggregateFunc.COUNT, None, "n"),
            AggregateSpec(AggregateFunc.MIN, "p_name", "first_name"),
        ],
    )
    assert analyze(ok, star_catalog).ok


def test_union_arity_mismatch_is_a007(star_catalog):
    result = analyze(UnionAll([PRODUCTS, STORES]), star_catalog)
    assert codes_of(result.errors) == ["REPRO-A007"]
    assert "4 vs 3" in result.errors[0].message
    assert_well_formed(result.diagnostics)


def test_difference_mismatch_is_a008(star_catalog):
    result = analyze(Difference(PRODUCTS, STORES), star_catalog)
    assert codes_of(result.errors) == ["REPRO-A008"]
    assert_well_formed(result.diagnostics)


def test_duplicate_output_column_is_a009(star_catalog):
    bad = Aggregate(
        SALES,
        ["product_id"],
        [AggregateSpec(AggregateFunc.SUM, "amount", "product_id")],
    )
    result = analyze(bad, star_catalog)
    assert "REPRO-A009" in codes_of(result.errors)
    assert_well_formed(result.diagnostics)


def test_compatible_types_matrix():
    assert compatible_types(ColumnType.INTEGER, ColumnType.FLOAT)
    assert compatible_types(ColumnType.DATE, ColumnType.INTEGER)
    assert compatible_types(None, ColumnType.STRING)
    assert compatible_types(ColumnType.STRING, ColumnType.STRING)
    assert not compatible_types(ColumnType.STRING, ColumnType.FLOAT)
    assert not compatible_types(ColumnType.DATE, ColumnType.FLOAT)


# ----------------------------------------------------------- conservativeness

def test_every_workload_expression_analyzes_clean(tpcd_catalog_small):
    workloads = [
        queries.standalone_join_view(),
        queries.standalone_agg_view(),
        queries.view_set_plain(),
        queries.view_set_aggregate(),
        queries.large_view_set(),
        queries.large_view_set(with_aggregates=True),
        queries.selection_variant_views(),
        queries.example_3_1_queries(),
        queries.example_3_2_view(),
    ]
    for views in workloads:
        for name, expression in views.items():
            result = analyze(expression, tpcd_catalog_small)
            assert result.diagnostics == [], (name, result.diagnostics)
            assert result.schema is not None, name


# ---------------------------------------------------------------- provenance

def test_provenance_distinguishes_stored_from_computed(tpcd_catalog_small):
    expression = queries.standalone_agg_view()["v_revenue_by_nation"]
    records = provenance(expression, tpcd_catalog_small)
    revenue = records["revenue"]
    assert revenue.stored is False
    assert revenue.ctype == "float"
    assert "lineitem.l_extendedprice" in revenue.sources
    assert "aggregate" in revenue.operators
    n_name = records["n_name"]
    assert n_name.stored is True
    assert n_name.sources == ("nation.n_name",)


def test_provenance_tracks_sources_through_joins(tpcd_catalog_small):
    expression = queries.standalone_join_view()["v_order_details"]
    records = provenance(expression, tpcd_catalog_small)
    assert records["o_totalprice"].sources == ("orders.o_totalprice",)
    assert "join" in records["o_totalprice"].operators
    assert records["o_totalprice"].stored is True


# ----------------------------------------------------- catalog-free structure

def test_structural_projection_over_aggregate_detects_missing_alias():
    aggregate = Aggregate(
        BaseRelation("lineitem"),
        ["l_orderkey"],
        [AggregateSpec(AggregateFunc.SUM, "l_extendedprice", "revenue")],
    )
    diags = structural_diagnostics(Project(aggregate, ("revenuez",)))
    assert codes_of(diags) == ["REPRO-A002"]
    assert "revenue" in diags[0].message


def test_structural_duplicate_alias():
    bad = Aggregate(
        BaseRelation("lineitem"),
        ["l_orderkey"],
        [AggregateSpec(AggregateFunc.SUM, "l_extendedprice", "l_orderkey")],
    )
    assert codes_of(structural_diagnostics(bad)) == ["REPRO-A009"]


def test_q_build_rejects_structurally_broken_chain():
    chain = (
        Q.table("lineitem")
        .group_by("l_orderkey")
        .sum("l_extendedprice", "revenue")
        .select("revenuez")
    )
    with pytest.raises(WarehouseError) as excinfo:
        chain.build()
    assert "REPRO-A002" in str(excinfo.value)


# --------------------------------------------------------- façade integration

def test_define_view_rejects_unknown_column(star_catalog):
    wh = Warehouse().load(catalog=star_catalog)
    with pytest.raises(WarehouseError) as excinfo:
        wh.define_view("v_bad", Project(SALES, ("amout",)))
    message = str(excinfo.value)
    assert "REPRO-A002" in message
    assert "amount" in message  # the near-miss hint made it into the error
    assert "v_bad" in message


def test_define_view_rejects_type_mismatched_join(star_catalog):
    wh = Warehouse().load(catalog=star_catalog)
    with pytest.raises(WarehouseError) as excinfo:
        wh.define_view("v_bad", Join(SALES, PRODUCTS, [("amount", "p_name")]))
    assert "REPRO-A005" in str(excinfo.value)


def test_define_view_rejects_non_numeric_aggregate(star_catalog):
    wh = Warehouse().load(catalog=star_catalog)
    bad = Aggregate(
        PRODUCTS,
        ["p_category"],
        [AggregateSpec(AggregateFunc.SUM, "p_name", "total")],
    )
    with pytest.raises(WarehouseError) as excinfo:
        wh.define_view("v_bad", bad)
    message = str(excinfo.value)
    assert "REPRO-A006" in message
    assert "integer or float" in message


def test_analysis_can_be_disabled(star_catalog):
    wh = Warehouse(WarehouseConfig(analysis=False)).load(catalog=star_catalog)
    wh.define_view("v_bad", Project(SALES, ("amout",)))
    assert "v_bad" in wh.views


def test_warehouse_provenance_for_registered_view(star_catalog):
    wh = Warehouse().load(catalog=star_catalog)
    wh.define_view(
        "v_sales",
        Join(SALES, PRODUCTS, [("product_id", "p_id")]),
    )
    records = wh.provenance("v_sales")
    assert records["p_name"].sources == ("products.p_name",)
    with pytest.raises(WarehouseError):
        wh.provenance("v_missing")
