"""Tests for DAG construction, expansion, unification and subsumption."""

import pytest

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Join,
    Select,
)
from repro.algebra.predicates import lt
from repro.optimizer.dag import OperatorKind
from repro.optimizer.dag_builder import DagBuilder, build_dag
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def catalog():
    return tpcd.tpcd_catalog(scale_factor=0.01)


def three_way_join():
    return queries.chain_join(["lineitem", "orders", "customer"])


def test_expanded_dag_has_node_per_connected_subset(catalog):
    dag = build_dag({"Q": three_way_join()}, catalog)
    join_nodes = [n for n in dag.equivalence_nodes if not n.is_base_relation]
    # Connected subsets of {L, O, C}: {L,O}, {O,C}, {L,O,C} → 3 nodes
    # ({L,C} is not connected through any join condition).
    assert len(join_nodes) == 3
    sizes = sorted(len(n.base_relations) for n in join_nodes)
    assert sizes == [2, 2, 3]


def test_top_node_has_alternative_partitions(catalog):
    dag = build_dag({"Q": three_way_join()}, catalog)
    root = dag.roots["Q"]
    # (L⋈O)⋈C and L⋈(O⋈C) — both association orders present.
    assert len(root.children) == 2
    for op in root.children:
        assert op.operator.kind is OperatorKind.JOIN


def test_unification_across_queries(catalog):
    q1 = three_way_join()
    q2 = queries.chain_join(["lineitem", "orders", "customer", "nation"])
    dag = build_dag({"Q1": q1, "Q2": q2}, catalog)
    # The {lineitem, orders, customer} result is shared: exactly one node for it.
    matching = [
        n
        for n in dag.equivalence_nodes
        if n.base_relations == frozenset({"lineitem", "orders", "customer"})
    ]
    assert len(matching) == 1
    # It is the root of Q1 *and* reachable from Q2's root.
    assert dag.roots["Q1"] is matching[0]


def test_syntactically_different_join_orders_unify(catalog):
    lo_c = Join(
        Join(BaseRelation("lineitem"), BaseRelation("orders"), [("l_orderkey", "o_orderkey")]),
        BaseRelation("customer"),
        [("o_custkey", "c_custkey")],
    )
    o_cl = Join(
        BaseRelation("lineitem"),
        Join(BaseRelation("orders"), BaseRelation("customer"), [("o_custkey", "c_custkey")]),
        [("l_orderkey", "o_orderkey")],
    )
    dag = build_dag({"Q1": lo_c, "Q2": o_cl}, catalog)
    assert dag.roots["Q1"] is dag.roots["Q2"]


def test_selections_pushed_and_represented(catalog):
    expression = Select(three_way_join(), lt("o_totalprice", 1000.0))
    dag = build_dag({"Q": expression}, catalog)
    select_ops = [
        op for op in dag.operation_nodes if op.operator.kind is OperatorKind.SELECT
    ]
    assert select_ops, "selection must appear in the DAG"
    # The selection was pushed onto the orders base relation.
    assert any(op.inputs[0].is_base_relation for op in select_ops)


def test_aggregate_on_top_of_join_block(catalog):
    view = queries.standalone_agg_view()["v_revenue_by_nation"]
    dag = build_dag({"V": view}, catalog)
    agg_ops = [op for op in dag.operation_nodes if op.operator.kind is OperatorKind.AGGREGATE]
    assert len(agg_ops) >= 1
    assert dag.roots["V"].children[0].operator.kind is OperatorKind.AGGREGATE


def test_selection_subsumption_derivation(catalog):
    views = queries.selection_variant_views()
    dag = build_dag(views, catalog)
    # After push-down the selections sit on the orders base relation; the
    # more selective one (σ_{<10000}) gains a derivation that reads the less
    # selective one (σ_{<100000}) instead of the base relation.
    selects = [
        n
        for n in dag.equivalence_nodes
        if n.key.startswith("select[") and "o_totalprice" in n.key
    ]
    assert len(selects) == 2
    small = next(n for n in selects if "10000.0" in n.key and "100000.0" not in n.key)
    big = next(n for n in selects if "100000.0" in n.key)
    derivations = [
        op
        for op in small.children
        if op.operator.kind is OperatorKind.SELECT and op.inputs[0] is big
    ]
    assert derivations, "expected a subsumption derivation between the selection variants"


def test_groupby_subsumption_introduces_union_grouping(catalog):
    join = queries.chain_join(["lineitem", "orders"])
    specs = [AggregateSpec(AggregateFunc.SUM, "l_extendedprice", "rev")]
    by_date = Aggregate(join, ["o_orderdate"], specs)
    by_priority = Aggregate(join, ["o_orderpriority"], specs)
    dag = build_dag({"V1": by_date, "V2": by_priority}, catalog)
    union_groupings = [
        n
        for n in dag.equivalence_nodes
        if "aggregate[o_orderdate,o_orderpriority" in n.key
    ]
    assert union_groupings, "expected the union group-by node to be introduced"
    # Both original views can be derived from it.
    union_node = union_groupings[0]
    consumers = {op.parent.id for op in union_node.parents}
    assert dag.roots["V1"].id in consumers and dag.roots["V2"].id in consumers


def test_expand_joins_disabled_uses_literal_tree(catalog):
    builder = DagBuilder(catalog, expand_joins=False)
    builder.add_query("Q", three_way_join())
    dag = builder.finish()
    root = dag.roots["Q"]
    assert len(root.children) == 1  # only the written association order


def test_cross_product_block_still_buildable(catalog):
    # Two relations with no join condition: top node must still exist.
    expression = Join(BaseRelation("nation"), BaseRelation("region"), [])
    dag = build_dag({"Q": expression}, catalog)
    root = dag.roots["Q"]
    assert root.base_relations == frozenset({"nation", "region"})
    assert root.children
