"""Unit tests for the physical bag operators."""

import pytest

from repro.algebra.expressions import AggregateFunc, AggregateSpec
from repro.algebra.predicates import eq, gt
from repro.catalog.schema import Schema
from repro.engine import operators
from repro.storage.index import HashIndex
from repro.storage.relation import Relation

LEFT_SCHEMA = Schema.from_names(["l_id", "l_key", "l_val"])
RIGHT_SCHEMA = Schema.from_names(["r_key", "r_val"])

LEFT = Relation(LEFT_SCHEMA, [(1, "a", 10), (2, "b", 20), (3, "a", 30), (4, "c", 40)])
RIGHT = Relation(RIGHT_SCHEMA, [("a", 100), ("b", 200), ("a", 300)])


def expected_join_rows():
    return sorted(
        [
            (1, "a", 10, "a", 100),
            (1, "a", 10, "a", 300),
            (3, "a", 30, "a", 100),
            (3, "a", 30, "a", 300),
            (2, "b", 20, "b", 200),
        ]
    )


def test_select_and_project():
    filtered = operators.select(LEFT, gt("l_val", 15))
    assert len(filtered) == 3
    projected = operators.project(LEFT, ["l_key"])
    assert projected.rows.count(("a",)) == 2


@pytest.mark.parametrize("join_fn", [operators.nested_loop_join, operators.hash_join, operators.merge_join])
def test_join_algorithms_agree(join_fn):
    result = join_fn(LEFT, RIGHT, [("l_key", "r_key")])
    assert sorted(result.rows) == expected_join_rows()


def test_join_with_swapped_condition_sides():
    result = operators.hash_join(LEFT, RIGHT, [("r_key", "l_key")])
    assert sorted(result.rows) == expected_join_rows()


def test_join_with_residual_predicate():
    result = operators.hash_join(LEFT, RIGHT, [("l_key", "r_key")], residual=gt("r_val", 150))
    assert sorted(result.rows) == sorted(
        [(1, "a", 10, "a", 300), (3, "a", 30, "a", 300), (2, "b", 20, "b", 200)]
    )


def test_cross_product_via_empty_conditions():
    result = operators.nested_loop_join(LEFT, RIGHT, [])
    assert len(result) == len(LEFT) * len(RIGHT)
    # hash_join falls back to nested loops for cross products
    assert len(operators.hash_join(LEFT, RIGHT, [])) == len(LEFT) * len(RIGHT)


def test_index_nested_loop_join_matches_hash_join():
    index = HashIndex(RIGHT, ["r_key"])
    result = operators.index_nested_loop_join(LEFT, RIGHT, index, [("l_key", "r_key")])
    assert sorted(result.rows) == expected_join_rows()


def test_union_all_and_difference():
    combined = operators.union_all(LEFT, LEFT)
    assert len(combined) == 8
    assert len(operators.difference(combined, LEFT)) == 4
    with pytest.raises(ValueError):
        operators.union_all()


def test_distinct_and_sort():
    duplicated = operators.union_all(LEFT, LEFT)
    assert len(operators.distinct(duplicated)) == 4
    ordered = operators.sort(LEFT, ["l_val"])
    assert [row[2] for row in ordered] == [10, 20, 30, 40]


def test_aggregate_group_by():
    result = operators.aggregate(
        LEFT,
        ["l_key"],
        [
            AggregateSpec(AggregateFunc.SUM, "l_val", "total"),
            AggregateSpec(AggregateFunc.COUNT, None, "n"),
            AggregateSpec(AggregateFunc.MIN, "l_val", "lo"),
            AggregateSpec(AggregateFunc.MAX, "l_val", "hi"),
            AggregateSpec(AggregateFunc.AVG, "l_val", "avg"),
        ],
    )
    rows = {row[0]: row[1:] for row in result.rows}
    assert rows["a"] == (40, 2, 10, 30, 20.0)
    assert rows["b"] == (20, 1, 20, 20, 20.0)
    assert rows["c"] == (40, 1, 40, 40, 40.0)


def test_scalar_aggregate_over_empty_input():
    empty = Relation(LEFT_SCHEMA, [])
    result = operators.aggregate(
        empty, [], [AggregateSpec(AggregateFunc.COUNT, None, "n"), AggregateSpec(AggregateFunc.SUM, "l_val", "s")]
    )
    assert result.rows == [(0, None)]


def test_grouped_aggregate_over_empty_input_has_no_rows():
    empty = Relation(LEFT_SCHEMA, [])
    result = operators.aggregate(empty, ["l_key"], [AggregateSpec(AggregateFunc.COUNT, None, "n")])
    assert result.rows == []


def test_aggregate_ignores_null_values():
    relation = Relation(LEFT_SCHEMA, [(1, "a", None), (2, "a", 10)])
    result = operators.aggregate(relation, ["l_key"], [AggregateSpec(AggregateFunc.SUM, "l_val", "s"), AggregateSpec(AggregateFunc.COUNT, None, "n")])
    assert result.rows == [("a", 10, 2)]


def test_merge_join_handles_none_keys_like_hash_join():
    from repro.catalog.schema import Schema
    from repro.storage.relation import Relation

    left = Relation(Schema.from_names(["a", "x"]), [(1, 10), (None, 20), (2, 30)])
    right = Relation(Schema.from_names(["b", "y"]), [(None, 100), (1, 200)])
    merged = operators.merge_join(left, right, [("a", "b")])
    hashed = operators.hash_join(left, right, [("a", "b")])
    assert merged.same_bag(hashed)
    # None keys match each other, mirroring hash-bucket semantics.
    assert (None, 20, None, 100) in merged.rows
