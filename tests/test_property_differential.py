"""Property-based tests of the differential-maintenance invariant.

For randomly generated databases, update batches and view shapes, applying
the computed differential to the old view must equal recomputing the view on
the updated database (multiset equality).  This is the invariant every
maintenance plan in the paper relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Join,
    Project,
    Select,
)
from repro.algebra.predicates import gt
from repro.catalog.schema import Schema, TableDef
from repro.engine.database import Database
from repro.engine.differential import DifferentialEngine, OldValueCache, differentiate
from repro.engine.executor import evaluate
from repro.storage.delta import DeltaKind
from repro.storage.relation import Relation

FACT_SCHEMA = Schema.from_names(["f_id", "dim_id", "value"])
DIM_SCHEMA = Schema.from_names(["d_id", "d_group"])

fact_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=100),
    ),
    min_size=0,
    max_size=25,
)
dim_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=0, max_value=2)),
    min_size=0,
    max_size=8,
)
updated_relation = st.sampled_from(["fact", "dim"])
update_kind = st.sampled_from([DeltaKind.INSERT, DeltaKind.DELETE])


def make_database(facts, dims):
    database = Database()
    database.create_table(TableDef("fact", FACT_SCHEMA, ()), facts)
    database.create_table(TableDef("dim", DIM_SCHEMA, ()), dims)
    return database


def view_expressions():
    join = Join(BaseRelation("fact"), BaseRelation("dim"), [("dim_id", "d_id")])
    return [
        join,
        Select(join, gt("value", 40)),
        Project(join, ["d_group", "value"]),
        Aggregate(
            join,
            ["d_group"],
            [
                AggregateSpec(AggregateFunc.SUM, "value", "total"),
                AggregateSpec(AggregateFunc.COUNT, None, "n"),
                AggregateSpec(AggregateFunc.MAX, "value", "peak"),
            ],
        ),
        Aggregate(BaseRelation("fact"), [], [AggregateSpec(AggregateFunc.COUNT, None, "n")]),
    ]


def pick_delta(database, relation, kind, draw_rows):
    schema = database.table(relation).schema
    if kind is DeltaKind.DELETE:
        existing = database.table(relation).rows
        return Relation(schema, existing[: max(0, min(len(existing), len(draw_rows)))])
    if relation == "fact":
        rows = [(100 + i, r[1], r[2]) for i, r in enumerate(draw_rows)]
    else:
        rows = [(r[0], r[1] % 3) for r in draw_rows][:4]
    return Relation(schema, [row[: len(schema)] for row in rows])


@given(
    facts=fact_rows,
    dims=dim_rows,
    extra=fact_rows,
    relation=updated_relation,
    kind=update_kind,
    view_index=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=120, deadline=None)
def test_incremental_refresh_equals_recomputation(facts, dims, extra, relation, kind, view_index):
    database = make_database(facts, dims)
    expression = view_expressions()[view_index]
    delta_rows = pick_delta(database, relation, kind, extra)

    old_result = evaluate(expression, database)
    change = differentiate(expression, database, relation, kind, delta_rows)

    updated = database.copy()
    updated.apply_update(relation, kind, delta_rows)
    recomputed = evaluate(expression, updated)

    incremental = old_result.apply_delta(inserts=change.inserts, deletes=change.deletes)
    assert incremental.same_bag(recomputed)


@given(facts=fact_rows, dims=dim_rows, relation=updated_relation)
@settings(max_examples=60, deadline=None)
def test_empty_update_produces_empty_differential(facts, dims, relation):
    database = make_database(facts, dims)
    expression = view_expressions()[0]
    schema = database.table(relation).schema
    change = differentiate(expression, database, relation, DeltaKind.INSERT, Relation(schema, []))
    assert change.is_empty


@given(
    facts=fact_rows,
    dims=dim_rows,
    extra=fact_rows,
    relation=updated_relation,
    kind=update_kind,
    view_index=st.integers(min_value=0, max_value=4),
)
@settings(max_examples=120, deadline=None)
def test_vectorized_engine_matches_interpreted_differentiate(
    facts, dims, extra, relation, kind, view_index
):
    """The vectorized engine's δ+/δ− bags equal the interpreted oracle's."""
    database = make_database(facts, dims)
    expression = view_expressions()[view_index]
    delta_rows = pick_delta(database, relation, kind, extra)

    oracle = differentiate(expression, database, relation, kind, delta_rows)
    engine = DifferentialEngine(database)
    vectorized = engine.differentiate(expression, relation, kind, delta_rows)

    assert vectorized.inserts.same_bag(oracle.inserts)
    assert vectorized.deletes.same_bag(oracle.deletes)


@given(
    facts=fact_rows,
    dims=dim_rows,
    extra=fact_rows,
    relation=updated_relation,
    kind=update_kind,
)
@settings(max_examples=60, deadline=None)
def test_vectorized_engine_shared_cache_stays_correct(facts, dims, extra, relation, kind):
    """One shared cache across all views of a round must not change any bag.

    This is the refresher's usage pattern: every view's differential within
    a single-relation update round reads through the same
    :class:`OldValueCache`, so memoized old values, sub-expression deltas
    and hash builds are served across view boundaries.
    """
    database = make_database(facts, dims)
    delta_rows = pick_delta(database, relation, kind, extra)
    engine = DifferentialEngine(database)
    cache = OldValueCache()
    for expression in view_expressions():
        oracle = differentiate(expression, database, relation, kind, delta_rows)
        shared = engine.differentiate(expression, relation, kind, delta_rows, cache=cache)
        assert shared.inserts.same_bag(oracle.inserts)
        assert shared.deletes.same_bag(oracle.deletes)
