"""Unit tests for schemas and table definitions."""

import pytest

from repro.catalog.schema import Column, ColumnType, Schema, SchemaError, TableDef


def test_column_default_widths():
    assert Column("x", ColumnType.INTEGER).byte_width == 4
    assert Column("x", ColumnType.FLOAT).byte_width == 8
    assert Column("x", ColumnType.STRING).byte_width == 24
    assert Column("x", ColumnType.BOOLEAN).byte_width == 1


def test_column_explicit_width_overrides_type_default():
    assert Column("name", ColumnType.STRING, width=55).byte_width == 55


def test_column_unqualified_strips_table_prefix():
    assert Column("orders.o_orderkey").unqualified == "o_orderkey"
    assert Column("o_orderkey").unqualified == "o_orderkey"


def test_column_renamed_keeps_type_and_width():
    renamed = Column("a", ColumnType.FLOAT, width=16).renamed("b")
    assert renamed.name == "b"
    assert renamed.ctype is ColumnType.FLOAT
    assert renamed.byte_width == 16


def test_schema_from_names_and_len():
    schema = Schema.from_names(["a", "b", "c"])
    assert len(schema) == 3
    assert schema.names == ("a", "b", "c")


def test_schema_tuple_width_sums_columns():
    schema = Schema.of(Column("a", ColumnType.INTEGER), Column("b", ColumnType.FLOAT))
    assert schema.tuple_width == 12


def test_schema_tuple_width_never_zero():
    assert Schema(()).tuple_width == 1


def test_index_of_exact_and_suffix_match():
    schema = Schema.from_names(["orders.o_orderkey", "orders.o_custkey"])
    assert schema.index_of("orders.o_orderkey") == 0
    assert schema.index_of("o_custkey") == 1


def test_index_of_missing_column_raises():
    schema = Schema.from_names(["a", "b"])
    with pytest.raises(SchemaError):
        schema.index_of("missing")


def test_index_of_ambiguous_suffix_raises():
    schema = Schema.from_names(["t1.key", "t2.key"])
    with pytest.raises(SchemaError):
        schema.index_of("key")


def test_contains_uses_resolution():
    schema = Schema.from_names(["orders.o_orderkey"])
    assert "o_orderkey" in schema
    assert "missing" not in schema


def test_project_preserves_order_of_request():
    schema = Schema.from_names(["a", "b", "c"])
    projected = schema.project(["c", "a"])
    assert projected.names == ("c", "a")


def test_concat_appends_columns():
    left = Schema.from_names(["a"])
    right = Schema.from_names(["b", "c"])
    assert left.concat(right).names == ("a", "b", "c")


def test_rename_prefix_requalifies_all_columns():
    schema = Schema.from_names(["t.a", "b"])
    renamed = schema.rename_prefix("x")
    assert renamed.names == ("x.a", "x.b")


def test_positions_resolves_many_names():
    schema = Schema.from_names(["a", "b", "c"])
    assert schema.positions(["c", "b"]) == [2, 1]


def test_tabledef_tuple_width_delegates_to_schema():
    schema = Schema.of(Column("a", ColumnType.INTEGER), Column("b", ColumnType.STRING))
    table = TableDef("t", schema, ("a",))
    assert table.tuple_width == schema.tuple_width
