"""Unit tests for the AND-OR DAG data structure."""

import pytest

from repro.algebra.expressions import BaseRelation, Join
from repro.catalog.schema import Schema
from repro.catalog.statistics import TableStats
from repro.optimizer.dag import Dag, Operator, OperatorKind


def _add_base(dag, name, cardinality=10.0):
    node = dag.get_or_create_equivalence(
        name, BaseRelation(name), Schema.from_names([f"{name}_id"]), TableStats(cardinality, 8),
        frozenset({name}), is_base_relation=True,
    )
    dag.add_operation(node, Operator(OperatorKind.SCAN, relation=name), [])
    return node


def _add_join(dag, key, left, right):
    expr = Join(left.expression, right.expression, [])
    node = dag.get_or_create_equivalence(
        key, expr, left.schema.concat(right.schema), TableStats(left.stats.cardinality, 16),
        left.base_relations | right.base_relations,
    )
    dag.add_operation(node, Operator(OperatorKind.JOIN), [left, right])
    return node


def test_get_or_create_unifies_by_key():
    dag = Dag()
    a1 = _add_base(dag, "A")
    a2 = dag.get_or_create_equivalence(
        "A", BaseRelation("A"), Schema.from_names(["A_id"]), TableStats(10.0, 8), frozenset({"A"})
    )
    assert a1 is a2
    assert len(dag) == 1


def test_add_operation_deduplicates_identical_ops():
    dag = Dag()
    a = _add_base(dag, "A")
    b = _add_base(dag, "B")
    ab = _add_join(dag, "AB", a, b)
    duplicate = dag.add_operation(ab, Operator(OperatorKind.JOIN), [a, b])
    assert duplicate is None
    assert len(ab.children) == 1


def test_parent_links_maintained():
    dag = Dag()
    a = _add_base(dag, "A")
    b = _add_base(dag, "B")
    ab = _add_join(dag, "AB", a, b)
    assert any(op.parent is ab for op in a.parents)
    assert any(op.parent is ab for op in b.parents)


def test_mark_root_and_roots():
    dag = Dag()
    a = _add_base(dag, "A")
    dag.mark_root("Q", a)
    assert dag.roots["Q"] is a
    assert a.view_name == "Q"


def test_ancestors_of():
    dag = Dag()
    a = _add_base(dag, "A")
    b = _add_base(dag, "B")
    c = _add_base(dag, "C")
    ab = _add_join(dag, "AB", a, b)
    abc = _add_join(dag, "ABC", ab, c)
    assert dag.ancestors_of(a) == {ab.id, abc.id}
    assert dag.ancestors_of(abc) == set()


def test_topological_order_children_first():
    dag = Dag()
    a = _add_base(dag, "A")
    b = _add_base(dag, "B")
    ab = _add_join(dag, "AB", a, b)
    order = [node.id for node in dag.topological_order()]
    assert order.index(a.id) < order.index(ab.id)
    assert order.index(b.id) < order.index(ab.id)


def test_depends_on_and_describe():
    dag = Dag()
    a = _add_base(dag, "A")
    b = _add_base(dag, "B")
    ab = _add_join(dag, "AB", a, b)
    assert ab.depends_on("A") and ab.depends_on("B")
    assert not ab.depends_on("C")
    assert "AB" in ab.describe()
    assert "⋈" in dag.describe() or "join" in dag.describe().lower()


def test_node_lookup_by_id_and_key():
    dag = Dag()
    a = _add_base(dag, "A")
    assert dag.node(a.id) is a
    assert dag.by_key("A") is a
    assert dag.by_key("missing") is None


def test_operator_describe_variants():
    assert Operator(OperatorKind.SCAN, relation="r").describe() == "scan(r)"
    assert "π" in Operator(OperatorKind.PROJECT, columns=("a",)).describe()
    assert "⨯" in Operator(OperatorKind.JOIN).describe()
