"""Unit tests for the cost model."""

import pytest

from repro.catalog.statistics import ColumnStats, TableStats
from repro.optimizer.cost_model import CostModel, CostParameters, InputDescriptor
from repro.storage.buffer import BufferPool


@pytest.fixture
def model():
    return CostModel(CostParameters(), BufferPool(blocks=100, block_size=4096))


def stats(card, width=100, distinct=None, name="k"):
    cols = {name: ColumnStats(distinct=distinct)} if distinct else {}
    return TableStats(card, width, cols)


def test_scan_reuse_materialize_scale_with_size(model):
    small, large = stats(10), stats(10_000)
    assert model.scan_cost(small) < model.scan_cost(large)
    assert model.reuse_cost(small) < model.reuse_cost(large)
    assert model.materialize_cost(small) < model.materialize_cost(large)
    assert model.materialize_cost(stats(0)) == 0.0


def test_empty_relation_costs(model):
    assert model.scan_cost(stats(0)) == pytest.approx(model.parameters.seek_time)


def test_select_project_union_costs_monotone(model):
    assert model.select_cost(stats(10), stats(5)) < model.select_cost(stats(10_000), stats(5_000))
    assert model.project_cost(stats(10), stats(10)) < model.project_cost(stats(1000), stats(1000))
    assert model.union_cost([stats(10), stats(10)], stats(20)) < model.union_cost(
        [stats(10_000), stats(10_000)], stats(20_000)
    )


def test_aggregate_spills_when_input_exceeds_buffer(model):
    in_memory = model.aggregate_cost(stats(100), stats(10))
    spilled = model.aggregate_cost(stats(100_000, width=100), stats(10))
    assert spilled > in_memory
    # The spill shows up as a discontinuity, not just linear growth.
    assert spilled > model.aggregate_cost(stats(4000, width=100), stats(10)) * 2


def test_sort_cost_grows_superlinearly(model):
    assert model.sort_cost(stats(100_000)) > 10 * model.sort_cost(stats(1000))


def test_hash_join_preferred_for_unindexed_inputs(model):
    left = InputDescriptor(stats(10_000, distinct=10_000))
    right = InputDescriptor(stats(1_000, distinct=1_000))
    cost, algorithm = model.join_cost([("k", "k")], left, right, stats(10_000))
    assert algorithm in ("hash", "merge")
    assert cost > 0


def test_index_nested_loop_chosen_for_small_outer_probing_stored_indexed(model):
    delta = InputDescriptor(stats(50, distinct=50))
    stored = InputDescriptor(stats(100_000, distinct=100_000), stored=True, indexed_columns=(("k",),))
    access_stored = model.scan_cost(stored.stats)
    cost, algorithm = model.join_cost(
        [("k", "k")], delta, stored, stats(50), left_access=0.0, right_access=access_stored
    )
    assert algorithm == "index_nested_loop_right"
    # The stored side's access cost must not be charged.
    assert cost < access_stored


def test_index_not_usable_when_not_stored(model):
    delta = InputDescriptor(stats(50))
    virtual = InputDescriptor(stats(100_000), stored=False, indexed_columns=(("k",),))
    _, algorithm = model.join_cost([("k", "k")], delta, virtual, stats(50))
    assert not algorithm.startswith("index")


def test_merge_join_benefits_from_sort_order(model):
    sorted_left = InputDescriptor(stats(10_000), sorted_on=("k",))
    sorted_right = InputDescriptor(stats(10_000), sorted_on=("k",))
    unsorted = InputDescriptor(stats(10_000))
    sorted_cost, _ = model.join_cost([("k", "k")], sorted_left, sorted_right, stats(10_000))
    unsorted_cost = model.join_cost([("k", "k")], unsorted, unsorted, stats(10_000))[0]
    assert sorted_cost <= unsorted_cost


def test_cross_product_uses_nested_loops(model):
    left, right = InputDescriptor(stats(100)), InputDescriptor(stats(100))
    _, algorithm = model.join_cost([], left, right, stats(10_000))
    assert algorithm == "nested_loop"


def test_pipeline_breaker_only_for_large_outputs(model):
    assert model.pipeline_breaker_cost(stats(10)) == 0.0
    assert model.pipeline_breaker_cost(stats(1_000_000, width=100)) > 0.0


def test_merge_cost_cheaper_with_index(model):
    view = stats(100_000, width=200)
    deltas = [stats(1000, width=200)]
    assert model.merge_cost(view, deltas, has_index=True) < model.merge_cost(view, deltas, has_index=False)
    assert model.merge_cost(view, [stats(0)], has_index=False) == 0.0


def test_index_build_and_maintenance_costs(model):
    assert model.index_build_cost(stats(100_000)) > model.index_build_cost(stats(100))
    assert model.index_maintenance_cost([stats(1000)]) > model.index_maintenance_cost([stats(10)])
    assert model.index_maintenance_cost([stats(0)]) == 0.0


def test_buffer_size_changes_costs():
    large = CostModel(CostParameters(), BufferPool(blocks=8000))
    small = CostModel(CostParameters(), BufferPool(blocks=100))
    big_input = stats(500_000, width=100)
    assert small.aggregate_cost(big_input, stats(10)) >= large.aggregate_cost(big_input, stats(10))
