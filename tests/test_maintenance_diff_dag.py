"""Tests for differential annotations over the DAG (paper §5.2)."""

import pytest

from repro.maintenance.diff_dag import DeltaCatalog, DifferentialAnnotations, ResultKey
from repro.maintenance.update_spec import UpdateSpec
from repro.optimizer.dag_builder import build_dag
from repro.storage.delta import DeltaKind
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def catalog():
    return tpcd.tpcd_catalog(scale_factor=0.1)


@pytest.fixture(scope="module")
def annotated(catalog):
    dag = build_dag({"V": queries.standalone_join_view()["v_order_details"]}, catalog)
    spec = UpdateSpec.uniform(0.10, ["customer", "lineitem", "nation", "orders"])
    return dag, DifferentialAnnotations(dag, catalog, spec)


def test_two_updates_per_relation(annotated):
    dag, annotations = annotated
    assert len(annotations.updates()) == 2 * 4
    numbers = [u.number for u in annotations.updates()]
    assert numbers == sorted(numbers)


def test_update_by_number_roundtrip(annotated):
    _, annotations = annotated
    for update in annotations.updates():
        assert annotations.update_by_number(update.number) == update
    with pytest.raises(KeyError):
        annotations.update_by_number(999)


def test_delta_cardinality_of_base_relation_matches_spec(annotated, catalog):
    dag, annotations = annotated
    orders_node = next(n for n in dag.equivalence_nodes if n.key == "orders")
    insert = next(u for u in annotations.updates() if str(u) == "δ+orders")
    stats = annotations.delta_stats(orders_node.id, insert.number)
    assert stats.cardinality == pytest.approx(catalog.stats("orders").cardinality * 0.10)


def test_delta_cardinality_propagates_through_joins(annotated, catalog):
    dag, annotations = annotated
    root = dag.roots["V"]
    insert_lineitem = next(u for u in annotations.updates() if str(u) == "δ+lineitem")
    stats = annotations.delta_stats(root.id, insert_lineitem.number)
    # Each inserted lineitem joins with exactly one order/customer/nation.
    assert stats.cardinality == pytest.approx(
        catalog.stats("lineitem").cardinality * 0.10, rel=0.05
    )


def test_unaffected_node_has_empty_delta(annotated):
    dag, annotations = annotated
    nation_node = next(n for n in dag.equivalence_nodes if n.key == "nation")
    insert_orders = next(u for u in annotations.updates() if str(u) == "δ+orders")
    assert not annotations.depends(nation_node, insert_orders)
    assert annotations.delta_stats(nation_node.id, insert_orders.number).cardinality == 0.0


def test_deletes_are_half_of_inserts(annotated):
    dag, annotations = annotated
    root = dag.roots["V"]
    insert = next(u for u in annotations.updates() if str(u) == "δ+orders")
    delete = next(u for u in annotations.updates() if str(u) == "δ-orders")
    plus = annotations.delta_stats(root.id, insert.number).cardinality
    minus = annotations.delta_stats(root.id, delete.number).cardinality
    assert minus == pytest.approx(plus / 2, rel=0.05)


def test_delta_stats_list_and_total(annotated):
    dag, annotations = annotated
    root = dag.roots["V"]
    stats_list = annotations.delta_stats_list(root.id)
    assert len(stats_list) == 8
    assert annotations.total_delta_cardinality(root.id) == pytest.approx(
        sum(s.cardinality for s in stats_list)
    )


def test_delta_catalog_overrides_one_relation(catalog):
    spec = UpdateSpec.uniform(0.10, ["orders"])
    delta_stats = spec.delta_stats(catalog, "orders", DeltaKind.INSERT)
    view = DeltaCatalog(catalog, "orders", delta_stats)
    assert view.stats("orders").cardinality == pytest.approx(delta_stats.cardinality)
    assert view.stats("customer").cardinality == catalog.stats("customer").cardinality
    assert view.schema("orders").names == catalog.schema("orders").names
    assert view.has_table("orders")


def test_result_key_describe(annotated):
    dag, _ = annotated
    root = dag.roots["V"]
    assert ResultKey(root.id, 0).describe(dag) == "V"
    assert ResultKey(root.id, 3).describe(dag).startswith("δ3(")
    assert ResultKey(root.id, 0).is_full
    assert not ResultKey(root.id, 1).is_full
