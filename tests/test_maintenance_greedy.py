"""Tests for the greedy selection algorithm and its optimizations."""

import pytest

from repro.maintenance.candidates import Candidate, enumerate_candidates
from repro.maintenance.cost_engine import MaintenanceCostEngine
from repro.maintenance.diff_dag import ResultKey
from repro.maintenance.greedy import GreedyViewSelector
from repro.maintenance.update_spec import UpdateSpec
from repro.optimizer.dag_builder import build_dag
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def catalog():
    return tpcd.tpcd_catalog(scale_factor=0.1)


def prepared_engine(catalog, views, percentage=0.05):
    from repro.algebra.expressions import base_relations

    dag = build_dag(views, catalog)
    relations = sorted({r for e in views.values() for r in base_relations(e)})
    spec = UpdateSpec.uniform(percentage, relations)
    engine = MaintenanceCostEngine(dag, catalog, spec)
    engine.set_materialized(ResultKey(dag.roots[name].id, 0) for name in views)
    candidates = enumerate_candidates(dag, catalog, engine.annotations, engine.materialized)
    return dag, engine, candidates


def test_greedy_never_increases_cost(catalog):
    dag, engine, candidates = prepared_engine(catalog, queries.view_set_plain())
    selection = GreedyViewSelector(engine).run(candidates)
    assert selection.final_cost <= selection.initial_cost + 1e-9
    assert selection.improvement >= 0
    assert 0 <= selection.improvement_ratio <= 1


def test_every_selection_has_positive_benefit(catalog):
    dag, engine, candidates = prepared_engine(catalog, queries.view_set_plain())
    selection = GreedyViewSelector(engine).run(candidates)
    assert selection.selections, "Greedy should find something to materialize here"
    assert all(chosen.benefit > 0 for chosen in selection.selections)


def test_selected_indexes_are_applied_to_engine(catalog):
    dag, engine, candidates = prepared_engine(catalog, queries.standalone_join_view())
    selection = GreedyViewSelector(engine).run(candidates)
    for chosen in selection.selected_indexes():
        assert tuple(chosen.candidate.columns) in engine.indexes.get(chosen.candidate.node_id, set())
    for chosen in selection.selected_results():
        assert chosen.candidate.key in engine.materialized


def test_monotonic_and_basic_loops_reach_similar_cost(catalog):
    dag1, engine1, candidates1 = prepared_engine(catalog, queries.view_set_plain())
    lazy = GreedyViewSelector(engine1, use_monotonicity=True).run(candidates1)
    dag2, engine2, candidates2 = prepared_engine(catalog, queries.view_set_plain())
    eager = GreedyViewSelector(engine2, use_monotonicity=False).run(candidates2)
    assert lazy.final_cost == pytest.approx(eager.final_cost, rel=0.05)
    # The monotonicity optimization's whole point: far fewer benefit evaluations.
    assert lazy.benefit_evaluations <= eager.benefit_evaluations


def test_max_selections_limit_respected(catalog):
    dag, engine, candidates = prepared_engine(catalog, queries.view_set_plain())
    selection = GreedyViewSelector(engine, max_selections=2).run(candidates)
    assert len(selection.selections) <= 2


def test_empty_candidate_list_is_noop(catalog):
    dag, engine, _ = prepared_engine(catalog, queries.standalone_join_view())
    selection = GreedyViewSelector(engine).run([])
    assert selection.selections == []
    assert selection.final_cost == pytest.approx(selection.initial_cost)


def test_dispositions_are_classified(catalog):
    dag, engine, candidates = prepared_engine(catalog, queries.view_set_aggregate(), percentage=0.2)
    selection = GreedyViewSelector(engine).run(candidates)
    counts = selection.count_by_disposition()
    assert sum(counts.values()) == len(selection.selections)
    for chosen in selection.selections:
        assert chosen.disposition in ("permanent", "temporary", "index")
        if chosen.candidate.kind == "index":
            assert chosen.disposition == "index"


def test_candidate_describe(catalog):
    dag, engine, candidates = prepared_engine(catalog, queries.standalone_join_view())
    for candidate in candidates[:10]:
        text = candidate.describe(dag)
        assert text
        if candidate.kind == "index":
            assert text.startswith("index(")
