"""Delta coalescing: kernels, pending buffer, and the replay-equivalence oracle.

The load-bearing invariant: refreshing views once with a *coalesced* delta
produces exactly the same bags as replaying the original rounds eagerly —
which the PR-2 refresh machinery in turn pins against full recomputation.
On top of that, the edge cases the scheduler's fast paths rely on:
insert-then-delete annihilates to an empty bag (the refresh is skipped
entirely), delete-then-insert is preserved with multiset semantics.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.algebra.expressions import (
    Aggregate,
    AggregateFunc,
    AggregateSpec,
    BaseRelation,
    Join,
    Select,
)
from repro.algebra.predicates import gt
from repro.catalog.schema import Schema, TableDef
from repro.engine.database import Database
from repro.engine.executor import evaluate
from repro.maintenance.maintainer import ViewRefresher
from repro.storage.delta import (
    Delta,
    DeltaStore,
    coalesce_delta,
    coalesce_stores,
)
from repro.storage.relation import Relation
from repro.stream import PendingDeltas

SCHEMA = Schema.from_names(["k", "v"])


def rel(rows):
    return Relation(SCHEMA, rows)


def delta(inserts=(), deletes=(), relation="r"):
    return Delta(relation, rel(list(inserts)), rel(list(deletes)))


def store(inserts=(), deletes=(), relation="r"):
    s = DeltaStore([relation])
    s.set_delta(delta(inserts, deletes, relation))
    return s


# ------------------------------------------------------------------- kernels

def test_insert_then_delete_annihilates_to_empty_bag():
    out = coalesce_delta(delta(inserts=[(1, 1), (2, 2)]), delta(deletes=[(1, 1), (2, 2)]))
    assert out.delta.is_empty
    assert out.annihilated == 2


def test_annihilation_respects_multiplicity():
    # Two copies inserted, one deleted: one copy survives.
    out = coalesce_delta(delta(inserts=[(1, 1), (1, 1)]), delta(deletes=[(1, 1)]))
    assert out.delta.inserts.rows == [(1, 1)]
    assert not len(out.delta.deletes)
    assert out.annihilated == 1


def test_delete_then_insert_preserves_multiset_semantics():
    # Deleting an existing tuple and later inserting an equal one must keep
    # both sides: the delete targets a *base* copy, the insert adds a new
    # one, and cancelling them would assume facts about the base bag.
    out = coalesce_delta(delta(deletes=[(5, 5)]), delta(inserts=[(5, 5)]))
    assert out.delta.inserts.rows == [(5, 5)]
    assert out.delta.deletes.rows == [(5, 5)]
    assert out.annihilated == 0


def test_unrelated_rows_pass_through():
    out = coalesce_delta(
        delta(inserts=[(1, 1)], deletes=[(9, 9)]),
        delta(inserts=[(2, 2)], deletes=[(8, 8)]),
    )
    assert Counter(out.delta.inserts.rows) == Counter([(1, 1), (2, 2)])
    assert Counter(out.delta.deletes.rows) == Counter([(9, 9), (8, 8)])
    assert out.annihilated == 0


def test_coalesce_rejects_different_relations():
    with pytest.raises(ValueError):
        coalesce_delta(delta(relation="r"), delta(relation="s"))


def test_coalesce_stores_folds_rounds_and_counts_annihilation():
    rounds = [
        store(inserts=[(1, 1), (2, 2)]),
        store(deletes=[(1, 1)]),
        store(inserts=[(3, 3)], deletes=[(2, 2)]),
    ]
    merged, annihilated = coalesce_stores(rounds)
    d = merged.delta("r")
    assert Counter(d.inserts.rows) == Counter([(3, 3)])
    assert not len(d.deletes)
    assert annihilated == 2


def test_coalesce_stores_keeps_first_round_relation_order():
    a = DeltaStore(["r", "s"])
    a.set_delta(delta(inserts=[(1, 1)], relation="r"))
    a.set_delta(delta(inserts=[(2, 2)], relation="s"))
    b = DeltaStore(["s", "t"])
    b.set_delta(delta(inserts=[(3, 3)], relation="s"))
    b.set_delta(delta(inserts=[(4, 4)], relation="t"))
    merged, _ = coalesce_stores([a, b])
    assert merged.relation_order == ["r", "s", "t"]
    assert Counter(merged.delta("s").inserts.rows) == Counter([(2, 2), (3, 3)])


def test_coalesce_stores_does_not_mutate_inputs():
    first = store(inserts=[(1, 1)])
    second = store(deletes=[(1, 1)])
    coalesce_stores([first, second])
    assert first.delta("r").inserts.rows == [(1, 1)]
    assert second.delta("r").deletes.rows == [(1, 1)]


# ------------------------------------------------------------ pending buffer

def test_pending_deltas_coalesces_and_resets():
    pending = PendingDeltas(coalesce=True)
    pending.ingest(store(inserts=[(1, 1), (2, 2)]))
    pending.ingest(store(deletes=[(1, 1)]))
    assert pending.batches == 2
    assert pending.rows_ingested == 3
    assert pending.annihilated_rows == 1
    assert pending.pending_rows() == 1
    assert pending.delta_sizes() == {"r": (1, 0)}
    rounds = pending.take()
    assert len(rounds) == 1
    assert rounds[0].delta("r").inserts.rows == [(2, 2)]
    assert pending.is_empty and pending.pending_rows() == 0


def test_pending_deltas_fully_annihilated_flush_is_empty():
    pending = PendingDeltas(coalesce=True)
    pending.ingest(store(inserts=[(1, 1)]))
    pending.ingest(store(deletes=[(1, 1)]))
    assert pending.batches == 2
    assert pending.pending_rows() == 0
    assert pending.take() == []


def test_pending_deltas_without_coalescing_keeps_rounds_verbatim():
    pending = PendingDeltas(coalesce=False)
    first, second = store(inserts=[(1, 1)]), store(deletes=[(1, 1)])
    pending.ingest(first)
    pending.ingest(second)
    assert pending.pending_rows() == 2
    assert pending.delta_sizes() == {"r": (1, 1)}
    assert pending.take() == [first, second]


# ------------------------------------------- replay equivalence (PR-2 oracle)

FACT_SCHEMA = Schema.from_names(["f_id", "dim_id", "value"])
DIM_SCHEMA = Schema.from_names(["d_id", "d_group"])


def make_database(facts, dims):
    database = Database()
    database.create_table(TableDef("fact", FACT_SCHEMA, ()), facts)
    database.create_table(TableDef("dim", DIM_SCHEMA, ()), dims)
    return database


def stream_views():
    join = Join(BaseRelation("fact"), BaseRelation("dim"), [("dim_id", "d_id")])
    return {
        "v_join": join,
        "v_agg": Aggregate(
            join,
            ["d_group"],
            [
                AggregateSpec(AggregateFunc.SUM, "value", "total"),
                AggregateSpec(AggregateFunc.COUNT, None, "n"),
            ],
        ),
        "v_big": Select(BaseRelation("fact"), gt("value", 40)),
    }


fact_row = st.tuples(
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=100),
)
base_facts = st.lists(fact_row, min_size=0, max_size=12)
base_dims = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=2)),
    min_size=1,
    max_size=6,
)


@st.composite
def update_streams(draw):
    """A base database plus 1-4 valid rounds of fact inserts/deletes.

    Deletes are always drawn from the simulated current contents (base rows
    plus earlier-round inserts), so eager replay is well-defined; drawing
    them from earlier inserts is exactly what produces the annihilation the
    coalescing path must get right.
    """
    facts = draw(base_facts)
    dims = draw(base_dims)
    sim = list(facts)
    rounds = []
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        inserts = draw(st.lists(fact_row, min_size=0, max_size=5))
        pool = sim + inserts
        delete_count = draw(st.integers(min_value=0, max_value=min(4, len(pool))))
        indices = draw(
            st.lists(
                st.integers(min_value=0, max_value=max(0, len(pool) - 1)),
                min_size=delete_count,
                max_size=delete_count,
                unique=True,
            )
        )
        deletes = [pool[i] for i in indices]
        counts = Counter(pool)
        for row in deletes:
            counts[row] -= 1
        sim = list(counts.elements())
        rounds.append((inserts, deletes))
    return facts, dims, rounds


def as_store(inserts, deletes):
    s = DeltaStore(["fact"])
    s.set_delta(Delta("fact", Relation(FACT_SCHEMA, inserts), Relation(FACT_SCHEMA, deletes)))
    return s


@settings(max_examples=60, deadline=None)
@given(update_streams())
def test_coalesced_refresh_is_bag_identical_to_eager_replay(stream):
    facts, dims, rounds = stream
    views = stream_views()
    stores = [as_store(ins, dels) for ins, dels in rounds]

    # Eager replay: one refresh per round (the PR-2 path, pinned against
    # recomputation below).
    eager_db = make_database(facts, dims)
    eager = ViewRefresher(eager_db, views, use_physical=False)
    eager.initialize_views()
    for s in stores:
        eager.refresh(s)

    # Coalesced: every round folded into one store, one refresh (or none,
    # when everything annihilated).
    merged, _ = coalesce_stores(stores)
    coalesced_db = make_database(facts, dims)
    coalesced = ViewRefresher(coalesced_db, views, use_physical=False)
    coalesced.initialize_views()
    if merged.total_rows() > 0:
        coalesced.refresh(merged)

    for name in views:
        assert coalesced_db.view(name).same_bag(eager_db.view(name)), name
    # Both equal recomputation on the final database state.
    assert all(coalesced.verify_against_recomputation().values())
    assert all(eager.verify_against_recomputation().values())


@settings(max_examples=60, deadline=None)
@given(update_streams())
def test_pending_buffer_matches_coalesce_stores_oracle(stream):
    """The incremental buffer equals the reference fold, bag for bag."""
    _, _, rounds = stream
    stores = [as_store(ins, dels) for ins, dels in rounds]
    pending = PendingDeltas(coalesce=True)
    for s in stores:
        pending.ingest(s)
    oracle, oracle_annihilated = coalesce_stores(stores)
    assert pending.annihilated_rows == oracle_annihilated
    assert pending.pending_rows() == oracle.total_rows()
    assert pending.delta_sizes() == {
        r: s for r, s in oracle.delta_sizes().items()
    }
    taken = pending.take()
    if oracle.total_rows() == 0:
        assert taken == []
    else:
        assert len(taken) == 1
        merged = taken[0].delta("fact")
        assert merged.inserts.same_bag(oracle.delta("fact").inserts)
        assert merged.deletes.same_bag(oracle.delta("fact").deletes)


@settings(max_examples=20, deadline=None)
@given(update_streams())
def test_refresh_many_shares_cache_and_matches_per_round_refresh(stream):
    facts, dims, rounds = stream
    views = stream_views()
    stores = [as_store(ins, dels) for ins, dels in rounds]

    one_by_one = make_database(facts, dims)
    refresher = ViewRefresher(one_by_one, views, use_physical=False)
    refresher.initialize_views()
    for s in stores:
        refresher.refresh(s)

    many = make_database(facts, dims)
    multi = ViewRefresher(many, views, use_physical=False)
    multi.initialize_views()
    multi.refresh_many(stores)

    for name in views:
        assert many.view(name).same_bag(one_by_one.view(name)), name
    assert all(multi.verify_against_recomputation().values())
