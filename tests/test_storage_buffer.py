"""Unit tests for the buffer-pool model."""

from repro.storage.buffer import BufferPool


def test_default_matches_paper_configuration():
    pool = BufferPool()
    assert pool.blocks == 8000
    assert pool.block_size == 4096
    assert pool.capacity_bytes == 8000 * 4096


def test_blocks_for_rounds_up():
    pool = BufferPool(blocks=10, block_size=100)
    assert pool.blocks_for(0) == 0.0
    assert pool.blocks_for(1) == 1
    assert pool.blocks_for(250) == 3


def test_fits():
    pool = BufferPool(blocks=10, block_size=100)
    assert pool.fits(1000)
    assert not pool.fits(1001)


def test_partitions_needed_grows_with_input():
    pool = BufferPool(blocks=10, block_size=100)
    assert pool.partitions_needed(500) == 1
    assert pool.partitions_needed(5000) == 2
    assert pool.partitions_needed(0) == 1
