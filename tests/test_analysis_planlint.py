"""Tests for the plan verifier (``repro.analysis.planlint``).

The contract has two halves:

* **conservative** — every plan the optimizer produces for every supported
  workload verifies with zero diagnostics (a verifier that cries wolf would
  have to be turned off);
* **sensitive** — each seeded fault class is caught with its own distinct
  code: a mutated plan payload (``REPRO-P001``), a flipped index
  nested-loop orientation (``REPRO-P003``), a delta for a relation outside
  the round (``REPRO-P004``), a stale δ-rule schema (``REPRO-P005``), an
  unresolvable reuse (``REPRO-P006``), a mis-ordered shared temporary
  (``REPRO-P007``), and a scan of an unknown relation (``REPRO-P009``).

The integration layer is covered too: the :class:`PhysicalExecutor` refuses
to execute a plan the verifier rejects, ``Warehouse.apply`` refuses a
statically broken update round, and ``Warehouse.explain`` renders the
verification outcome.
"""

import pytest

from repro import Q, Warehouse, WarehouseConfig, WarehouseError
from repro.algebra.expressions import BaseRelation, Join, Project, Select
from repro.algebra.predicates import lit, lt
from repro.analysis import (
    CODES,
    SEVERITIES,
    render_verification,
    verify_delta_round,
    verify_plan,
    verify_temporaries,
)
from repro.catalog.schema import Column, ColumnType, Schema
from repro.engine.physical import PhysicalExecutor, PhysicalPlanError
from repro.optimizer.dag import OperatorKind
from repro.optimizer.plans import PlanNode
from repro.storage.delta import Delta, DeltaStore
from repro.storage.relation import Relation
from repro.workloads import queries


@pytest.fixture(scope="module")
def full_tpcd_database():
    """All eight TPC-D tables at a tiny scale (part/partsupp included)."""
    from repro.workloads.datagen import TpcdDataGenerator

    return TpcdDataGenerator(scale_factor=0.0005, seed=3).populate()


def plan_nodes(plan):
    """Every node of a plan tree, root first."""
    out = [plan]
    for i in range(len(out)):  # noqa: B007 — list grows while iterating
        out.extend(out[i].children)
    return out


def assert_well_formed(diagnostics):
    for d in diagnostics:
        assert d.code in CODES, d
        assert d.severity in SEVERITIES, d
        assert d.message


# --------------------------------------------------------- conservativeness

def test_every_workload_plan_verifies_clean(full_tpcd_database):
    executor = PhysicalExecutor(full_tpcd_database, feedback=False)
    workloads = [
        queries.standalone_join_view(),
        queries.standalone_agg_view(),
        queries.view_set_plain(),
        queries.view_set_aggregate(),
        queries.large_view_set(),
        queries.selection_variant_views(),
        queries.example_3_1_queries(),
        queries.example_3_2_view(),
    ]
    checked = 0
    for views in workloads:
        for name, expression in views.items():
            plan, _ = executor.plan(expression)
            diagnostics = verify_plan(plan, database=full_tpcd_database)
            assert diagnostics == [], (name, [d.render() for d in diagnostics])
            checked += 1
    assert checked >= 20


# ------------------------------------------------------------ seeded faults

def test_mutated_projection_payload_is_p001(full_tpcd_database):
    executor = PhysicalExecutor(full_tpcd_database, feedback=False)
    query = Project(
        Join(BaseRelation("customer"), BaseRelation("orders"),
             [("c_custkey", "o_custkey")]),
        ("c_name", "o_totalprice"),
    )
    plan, _ = executor.plan(query)
    projects = [
        n for n in plan_nodes(plan)
        if n.operator is not None and n.operator.kind is OperatorKind.PROJECT
    ]
    assert projects, "expected at least one projection step"
    # Operator is frozen; a seeded fault has to go through object.__setattr__.
    object.__setattr__(projects[0].operator, "columns", ("c_name", "bogus_col"))
    diagnostics = verify_plan(plan, database=full_tpcd_database)
    errors = [d for d in diagnostics if d.severity == "error"]
    assert {d.code for d in errors} == {"REPRO-P001"}
    assert "bogus_col" in errors[0].message
    assert_well_formed(diagnostics)


def test_flipped_index_join_orientation_is_p003(full_tpcd_database):
    executor = PhysicalExecutor(full_tpcd_database, feedback=False)
    expression = queries.standalone_join_view()["v_order_details"]
    plan, _ = executor.plan(expression)
    indexed = [
        n for n in plan_nodes(plan)
        if (n.algorithm or "").startswith("index_nested_loop")
        and len(n.children) == 2
        and not (n.children[0].operator is not None
                 and n.children[0].operator.kind is OperatorKind.SCAN
                 and n.children[1].operator is not None
                 and n.children[1].operator.kind is OperatorKind.SCAN)
    ]
    assert indexed, "expected an index NL join with a composite side"
    node = indexed[0]
    side = "left" if node.algorithm.endswith("_left") else "right"
    flipped = ("index_nested_loop_right" if side == "left"
               else "index_nested_loop_left")
    node.algorithm = flipped  # PlanNode itself is a plain mutable dataclass
    diagnostics = verify_plan(plan, database=full_tpcd_database)
    errors = [d for d in diagnostics if d.severity == "error"]
    assert {d.code for d in errors} == {"REPRO-P003"}
    assert "orientation" in errors[0].hint
    assert_well_formed(diagnostics)


def test_out_of_round_delta_is_p004(full_tpcd_database):
    schema = full_tpcd_database.table("customer").schema
    empty = Relation(schema, [])
    deltas = DeltaStore(["phantom"])
    deltas.set_delta(Delta("phantom", empty, empty))
    diagnostics = verify_delta_round(deltas, full_tpcd_database)
    assert [d.code for d in diagnostics] == ["REPRO-P004"]
    assert diagnostics[0].severity == "error"
    assert_well_formed(diagnostics)


def test_stale_delta_schema_is_p005(full_tpcd_database):
    stale = Schema.of(Column("c_bogus", ColumnType.INTEGER))
    base = full_tpcd_database.table("customer").schema
    deltas = DeltaStore(["customer"])
    deltas.set_delta(
        Delta("customer", Relation(stale, [(1,)]), Relation(base, []))
    )
    diagnostics = verify_delta_round(deltas, full_tpcd_database)
    assert [d.code for d in diagnostics] == ["REPRO-P005"]
    assert "stale" in diagnostics[0].hint
    assert_well_formed(diagnostics)


def test_unreferenced_relation_delta_warns_with_views(full_tpcd_database):
    schema = full_tpcd_database.table("part").schema
    rows = full_tpcd_database.table("part").rows[:1]
    deltas = DeltaStore(["part"])
    deltas.set_delta(Delta("part", Relation(schema, list(rows)), Relation(schema, [])))
    views = {"v": queries.standalone_join_view()["v_order_details"]}
    diagnostics = verify_delta_round(deltas, full_tpcd_database, views=views)
    assert [d.code for d in diagnostics] == ["REPRO-P004"]
    assert diagnostics[0].severity == "warning"


def test_unresolved_reuse_is_p006(full_tpcd_database):
    expression = Join(
        BaseRelation("customer"), BaseRelation("orders"),
        [("c_custkey", "o_custkey")],
    )
    recoverable = PlanNode(
        description="reuse[v_missing]", node_id=1, cost=0.0, cardinality=0.0,
        reused=True, expression=expression, view_name="v_missing",
    )
    diagnostics = verify_plan(recoverable, database=full_tpcd_database)
    assert [d.code for d in diagnostics] == ["REPRO-P006"]
    assert diagnostics[0].severity == "warning"  # can recompute via expression

    unrecoverable = PlanNode(
        description="reuse[v_missing]", node_id=2, cost=0.0, cardinality=0.0,
        reused=True, expression=None, view_name="v_missing",
    )
    diagnostics = verify_plan(unrecoverable, database=full_tpcd_database)
    assert [d.code for d in diagnostics] == ["REPRO-P006"]
    assert diagnostics[0].severity == "error"


def test_misordered_temporaries_is_p007():
    inner = Join(
        BaseRelation("customer"), BaseRelation("orders"),
        [("c_custkey", "o_custkey")],
    )
    outer = Select(inner, lt("o_totalprice", lit(100000.0)))
    good = [("t_inner", inner), ("t_outer", outer)]
    assert verify_temporaries(good) == []
    bad = [("t_outer", outer), ("t_inner", inner)]
    diagnostics = verify_temporaries(bad)
    assert [d.code for d in diagnostics] == ["REPRO-P007"]
    assert "t_inner" in diagnostics[0].message
    assert_well_formed(diagnostics)


def test_scan_of_unknown_relation_is_p009(full_tpcd_database):
    executor = PhysicalExecutor(full_tpcd_database, feedback=False)
    plan, _ = executor.plan(BaseRelation("nation"))
    scans = [
        n for n in plan_nodes(plan)
        if n.operator is not None and n.operator.kind is OperatorKind.SCAN
    ]
    assert scans
    object.__setattr__(scans[0].operator, "relation", "phantom")
    # The database's catalog would still resolve 'phantom'-free checks; use
    # the database alone so the scan is checked against loaded relations.
    from repro.catalog.catalog import Catalog

    diagnostics = verify_plan(plan, database=full_tpcd_database, catalog=Catalog())
    assert "REPRO-P009" in {d.code for d in diagnostics}


def test_seeded_fault_codes_are_distinct():
    """The acceptance criterion: each fault class has its own code."""
    assert len({"REPRO-P001", "REPRO-P003", "REPRO-P004",
                "REPRO-P005", "REPRO-P007"}) == 5


# ----------------------------------------------------------- executor refusal

def test_executor_refuses_mutated_cached_plan(full_tpcd_database):
    executor = PhysicalExecutor(
        full_tpcd_database, feedback=False, verify_plans="always"
    )
    query = Project(
        Join(BaseRelation("customer"), BaseRelation("orders"),
             [("c_custkey", "o_custkey")]),
        ("c_name", "o_totalprice"),
    )
    plan, _ = executor.plan(query)  # enters the cache, verified clean
    projects = [
        n for n in plan_nodes(plan)
        if n.operator is not None and n.operator.kind is OperatorKind.PROJECT
    ]
    object.__setattr__(projects[0].operator, "columns", ("c_name", "bogus_col"))
    with pytest.raises(PhysicalPlanError) as excinfo:
        executor.plan(query)  # "always" re-verifies the cached plan
    assert "REPRO-P001" in str(excinfo.value)


def test_executor_rejects_unknown_verify_mode(full_tpcd_database):
    with pytest.raises(ValueError):
        PhysicalExecutor(full_tpcd_database, verify_plans="sometimes")


# -------------------------------------------------------------- façade layer

def test_config_verify_plans_validation():
    with pytest.raises(WarehouseError):
        WarehouseConfig(verify_plans="sometimes")
    assert WarehouseConfig.profile("verify").verify_plans == "always"
    assert "verify-plans=always" in WarehouseConfig.profile("verify").describe()


def test_apply_rejects_statically_broken_round(full_tpcd_database):
    wh = Warehouse().load_data(database=full_tpcd_database.copy())
    wh.define_view(
        "v_order_details", queries.standalone_join_view()["v_order_details"]
    )
    stale = Schema.of(Column("c_bogus", ColumnType.INTEGER))
    base = wh.database.table("customer").schema
    deltas = DeltaStore(["customer"])
    deltas.set_delta(
        Delta("customer", Relation(stale, [(1,)]), Relation(base, []))
    )
    with pytest.raises(WarehouseError) as excinfo:
        wh.apply(deltas)
    assert "REPRO-P005" in str(excinfo.value)


def test_churn_rounds_verify_clean(full_tpcd_database):
    """A generated update batch refreshes under always-on verification."""
    wh = Warehouse(WarehouseConfig(verify_plans="always")).load_data(
        database=full_tpcd_database.copy()
    )
    wh.define_views(queries.view_set_plain())
    report = wh.apply(0.05)
    assert report.base_rows_applied > 0
    # Every view was refreshed, incrementally or by recomputation.
    refreshed = {s.view for s in report.steps} | set(report.recomputed_views)
    assert refreshed >= set(queries.view_set_plain())


def test_explain_renders_verification_outcome():
    wh = Warehouse(WarehouseConfig.profile("verify")).load(scale=0.01)
    wh.define_view(
        "v_order_details", queries.standalone_join_view()["v_order_details"]
    )
    wh.optimize()
    text = wh.explain("v_order_details")
    assert "verification:" in text
    assert "verified: no diagnostics" in text


def test_render_verification_shapes():
    assert render_verification([]) == ["verified: no diagnostics"]
    diagnostics = verify_temporaries([
        ("t_outer", Select(BaseRelation("orders"), lt("o_totalprice", lit(1.0)))),
        ("t_inner", BaseRelation("orders")),
    ])
    lines = render_verification(diagnostics)
    assert lines[0] == "1 diagnostic(s):"
    assert "REPRO-P007" in lines[1]
