"""Property tests: every columnar kernel ≡ its row-at-a-time oracle, per backend.

The columnar engine may only change *how* a bag is computed, never the bag:
for random inputs — including NULL join keys, NULL aggregate inputs and
deltas that make whole groups vanish — each batch kernel must produce
exactly the bag its row-based oracle produces, under **both** storage
backends.  The numpy leg exercises the whole-column paths (mask/gather
select, sort-probe joins, code-based group-reduce, ``VectorProbeBuild``
delta probes); the python leg pins the fallback used when numpy is absent.

Inputs are deliberately pushed over the vectorization thresholds by
pre-building stores (``column_store``), so the vector paths engage even on
hypothesis-sized bags.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import AggregateFunc, AggregateSpec
from repro.algebra.predicates import eq, gt, lit
from repro.catalog.schema import Schema
from repro.engine import operators
from repro.storage.columns import available_backends, forced_backend
from repro.storage.relation import Relation

LEFT_SCHEMA = Schema.from_names(["l_key", "l_value", "l_tag"])
RIGHT_SCHEMA = Schema.from_names(["r_key", "r_label"])

key = st.one_of(st.none(), st.integers(min_value=0, max_value=6))
value = st.one_of(st.none(), st.integers(min_value=-50, max_value=50))
tag = st.sampled_from(["a", "b", "c"])
label = st.sampled_from(["p", "q"])

left_rows = st.lists(st.tuples(key, value, tag), min_size=0, max_size=30)
right_rows = st.lists(st.tuples(key, label), min_size=0, max_size=20)

BACKENDS = available_backends()


def bag(relation: Relation) -> Counter:
    return Counter(relation.iter_rows())


def _columnar(schema: Schema, rows) -> Relation:
    """A relation with its store pre-built under the active backend."""
    relation = Relation(schema, [tuple(r) for r in rows])
    relation.column_store()
    return relation


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(rows=left_rows, threshold=st.integers(min_value=-50, max_value=50))
def test_select_batch_matches_row_select(backend, rows, threshold):
    predicate = gt("l_value", lit(threshold))
    with forced_backend(backend):
        relation = _columnar(LEFT_SCHEMA, rows)
        expected = bag(operators.select(Relation(LEFT_SCHEMA, list(rows)), predicate))
        assert bag(operators.select_batch(relation, predicate)) == expected


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=40, deadline=None)
@given(rows=left_rows)
def test_project_preserves_duplicates(backend, rows):
    with forced_backend(backend):
        relation = _columnar(LEFT_SCHEMA, rows)
        expected = Counter((r[2], r[0]) for r in rows)
        assert bag(relation.project(["l_tag", "l_key"])) == expected


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(lrows=left_rows, rrows=right_rows)
def test_hash_join_batch_matches_row_join(backend, lrows, rrows):
    conditions = [("l_key", "r_key")]
    with forced_backend(backend):
        left = _columnar(LEFT_SCHEMA, lrows)
        right = _columnar(RIGHT_SCHEMA, rrows)
        expected = bag(
            operators.hash_join(
                Relation(LEFT_SCHEMA, list(lrows)),
                Relation(RIGHT_SCHEMA, list(rrows)),
                conditions,
            )
        )
        assert bag(operators.hash_join_batch(left, right, conditions)) == expected


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=40, deadline=None)
@given(lrows=left_rows, rrows=right_rows, threshold=st.integers(min_value=-50, max_value=50))
def test_hash_join_batch_with_residual(backend, lrows, rrows, threshold):
    conditions = [("l_key", "r_key")]
    residual = gt("l_value", lit(threshold))
    with forced_backend(backend):
        left = _columnar(LEFT_SCHEMA, lrows)
        right = _columnar(RIGHT_SCHEMA, rrows)
        joined = operators.hash_join(
            Relation(LEFT_SCHEMA, list(lrows)), Relation(RIGHT_SCHEMA, list(rrows)), conditions
        )
        expected = bag(operators.select(joined, residual))
        assert bag(operators.hash_join_batch(left, right, conditions, residual)) == expected


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(rows=left_rows)
def test_aggregate_batch_matches_row_aggregate(backend, rows):
    specs = [
        AggregateSpec(AggregateFunc.SUM, "l_value", "total"),
        AggregateSpec(AggregateFunc.COUNT, None, "n"),
        AggregateSpec(AggregateFunc.MIN, "l_value", "low"),
        AggregateSpec(AggregateFunc.MAX, "l_value", "high"),
    ]
    with forced_backend(backend):
        relation = _columnar(LEFT_SCHEMA, rows)
        expected = bag(operators.aggregate(Relation(LEFT_SCHEMA, list(rows)), ["l_key"], specs))
        assert bag(operators.aggregate_batch(relation, ["l_key"], specs)) == expected


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=30, deadline=None)
@given(rows=left_rows)
def test_aggregate_batch_global_group(backend, rows):
    specs = [AggregateSpec(AggregateFunc.SUM, "l_value", "total")]
    with forced_backend(backend):
        relation = _columnar(LEFT_SCHEMA, rows)
        expected = bag(operators.aggregate(Relation(LEFT_SCHEMA, list(rows)), [], specs))
        assert bag(operators.aggregate_batch(relation, [], specs)) == expected


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(ins=left_rows, dels=left_rows, other=right_rows)
def test_delta_hash_join_batch_matches_plain_joins(backend, ins, dels, other):
    """δ-⋈ both bags — the path that exercises ``VectorProbeBuild`` probes."""
    conditions = [("l_key", "r_key")]
    with forced_backend(backend):
        inserts = _columnar(LEFT_SCHEMA, ins)
        deletes = _columnar(LEFT_SCHEMA, dels)
        stored = _columnar(RIGHT_SCHEMA, other)
        got_ins, got_dels = operators.delta_hash_join_batch(
            inserts, deletes, stored, conditions, delta_side="left"
        )
        oracle = Relation(RIGHT_SCHEMA, list(other))
        assert bag(got_ins) == bag(
            operators.hash_join(Relation(LEFT_SCHEMA, list(ins)), oracle, conditions)
        )
        assert bag(got_dels) == bag(
            operators.hash_join(Relation(LEFT_SCHEMA, list(dels)), oracle, conditions)
        )


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=40, deadline=None)
@given(ins=right_rows, dels=right_rows, other=left_rows)
def test_delta_hash_join_batch_right_side_delta(backend, ins, dels, other):
    conditions = [("l_key", "r_key")]
    with forced_backend(backend):
        inserts = _columnar(RIGHT_SCHEMA, ins)
        deletes = _columnar(RIGHT_SCHEMA, dels)
        stored = _columnar(LEFT_SCHEMA, other)
        got_ins, got_dels = operators.delta_hash_join_batch(
            inserts, deletes, stored, conditions, delta_side="right"
        )
        oracle = Relation(LEFT_SCHEMA, list(other))
        assert bag(got_ins) == bag(
            operators.hash_join(oracle, Relation(RIGHT_SCHEMA, list(ins)), conditions)
        )
        assert bag(got_dels) == bag(
            operators.hash_join(oracle, Relation(RIGHT_SCHEMA, list(dels)), conditions)
        )


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=30, deadline=None)
@given(lrows=left_rows, rrows=right_rows)
def test_vector_probe_build_emits_dict_probe_order(backend, lrows, rrows):
    """Not just the same bag: the vector probe preserves emission *order*."""
    conditions = [("l_key", "r_key")]
    with forced_backend(backend):
        stored = _columnar(RIGHT_SCHEMA, rrows)
        inserts = _columnar(LEFT_SCHEMA, lrows)
        empty = _columnar(LEFT_SCHEMA, [])
        got_ins, _ = operators.delta_hash_join_batch(
            inserts, empty, stored, conditions, delta_side="left"
        )
        reference, _ = operators.delta_hash_join_batch(
            Relation(LEFT_SCHEMA, list(lrows)),
            Relation(LEFT_SCHEMA, []),
            Relation(RIGHT_SCHEMA, list(rrows)),
            conditions,
            delta_side="left",
            build=operators.hash_build(Relation(RIGHT_SCHEMA, list(rrows)), [1 - 1]),
        )
        assert list(got_ins.iter_rows()) == list(reference.iter_rows())


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=40, deadline=None)
@given(rows=left_rows, dels=st.data())
def test_vanishing_groups_after_difference(backend, rows, dels):
    """Deleting every row of a group must erase the group, not zero it."""
    removed = dels.draw(st.lists(st.sampled_from(rows), max_size=len(rows)) if rows else st.just([]))
    specs = [AggregateSpec(AggregateFunc.COUNT, None, "n")]
    with forced_backend(backend):
        relation = _columnar(LEFT_SCHEMA, rows)
        survivors = relation.difference(Relation(LEFT_SCHEMA, list(removed)))
        got = operators.aggregate_batch(survivors, ["l_key"], specs)
        remaining = Counter(map(tuple, rows))
        remaining.subtract(Counter(map(tuple, removed)))
        expected_rows = list((+remaining).elements())
        expected = bag(operators.aggregate(Relation(LEFT_SCHEMA, expected_rows), ["l_key"], specs))
        assert bag(got) == expected
        present_keys = {r[0] for r in expected_rows}
        assert {r[0] for r in got.iter_rows()} == present_keys


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=40, deadline=None)
@given(lrows=left_rows, rrows=left_rows)
def test_union_and_difference_round_trip(backend, lrows, rrows):
    with forced_backend(backend):
        left = _columnar(LEFT_SCHEMA, lrows)
        right = _columnar(LEFT_SCHEMA, rrows)
        union = left.union_all(right)
        assert bag(union) == Counter(map(tuple, lrows)) + Counter(map(tuple, rrows))
        back = union.difference(right)
        assert bag(back) == Counter(map(tuple, lrows))


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=30, deadline=None)
@given(rows=left_rows)
def test_distinct_and_eq_predicate(backend, rows):
    with forced_backend(backend):
        relation = _columnar(LEFT_SCHEMA, rows)
        assert bag(operators.distinct(relation)) == Counter(set(map(tuple, rows)))
        predicate = eq("l_tag", lit("a"))
        expected = Counter(r for r in map(tuple, rows) if r[2] == "a")
        assert bag(operators.select_batch(relation, predicate)) == expected
