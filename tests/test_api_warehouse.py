"""Tests for the public façade: ``Warehouse``, ``WarehouseConfig`` and ``Q``.

Three layers of guarantees:

* the fluent :class:`Q` builder compiles to exactly the expressions the
  hand-built workload definitions produce (canonical equality, which implies
  bag equivalence on every database);
* the façade adds no semantic drift — ``Warehouse.optimize`` reproduces the
  directly wired ``ViewMaintenanceOptimizer`` costs bit-for-bit on the
  fig3/fig5 workloads;
* the session round-trips define → optimize → apply → explain with
  transactional apply semantics and friendly (near-miss) errors.
"""

import pytest

from repro import (
    Q,
    UpdateSpec,
    Warehouse,
    WarehouseConfig,
    WarehouseError,
    WarehouseRefreshReport,
)
from repro.algebra.predicates import lt
from repro.engine.executor import evaluate
from repro.maintenance.optimizer import ViewMaintenanceOptimizer
from repro.storage.delta import Delta, DeltaStore
from repro.storage.relation import Relation
from repro.workloads import queries, tpcd


# ----------------------------------------------------------------- Q builder

def q_standalone_agg():
    return (
        Q.table("lineitem").join("orders").join("customer").join("nation")
        .group_by("n_name")
        .sum("l_extendedprice", "revenue")
        .count("order_lines")
    )


def q_large_view_set():
    relations = {
        "v01_order_lines": ["lineitem", "orders", "customer"],
        "v02_order_nations": ["lineitem", "orders", "customer", "nation"],
        "v03_customer_orders": ["orders", "customer", "nation"],
        "v04_supplier_lines": ["lineitem", "supplier", "nation"],
        "v05_part_supply": ["partsupp", "part", "supplier"],
        "v06_part_lines": ["lineitem", "part", "orders"],
        "v07_supply_regions": ["supplier", "nation", "region"],
        "v08_customer_regions": ["customer", "nation", "region"],
        "v09_supply_lines": ["lineitem", "partsupp", "supplier"],
        "v10_order_parts": ["lineitem", "orders", "part"],
    }
    views = {}
    for name, chain in relations.items():
        q = Q.table(chain[0])
        for relation in chain[1:]:
            q = q.join(relation)
        views[name] = q
    return views


def test_q_matches_handbuilt_fig3_views():
    assert (
        Q.table("lineitem").join("orders").join("customer").join("nation").build()
        == queries.standalone_join_view()["v_order_details"]
    )
    assert q_standalone_agg().build() == queries.standalone_agg_view()["v_revenue_by_nation"]


def test_q_matches_handbuilt_fig5_views():
    hand = queries.large_view_set()
    built = {name: q.build() for name, q in q_large_view_set().items()}
    assert set(built) == set(hand)
    for name in hand:
        assert built[name].canonical() == hand[name].canonical(), name


def test_q_matches_handbuilt_selection_views():
    base = Q.table("lineitem").join("orders")
    built = {
        "v_big_orders": base.where(lt("o_totalprice", 100000.0)).build(),
        "v_small_orders": base.where(lt("o_totalprice", 10000.0)).build(),
    }
    hand = queries.selection_variant_views()
    for name in hand:
        assert built[name].canonical() == hand[name].canonical()


def test_q_bag_equivalent_on_executable_data(tiny_tpcd_database):
    expression = q_standalone_agg().build()
    hand = queries.standalone_agg_view()["v_revenue_by_nation"]
    assert evaluate(expression, tiny_tpcd_database).same_bag(
        evaluate(hand, tiny_tpcd_database)
    )


def test_q_builders_are_immutable_prefixes():
    prefix = Q.table("orders").join("customer")
    a = prefix.join("lineitem")
    b = prefix.join("nation")
    assert prefix.relations() == ("orders", "customer")
    assert a.relations() == ("orders", "customer", "lineitem")
    assert b.relations() == ("orders", "customer", "nation")


def test_q_explicit_on_condition_and_projection():
    expression = (
        Q.table("orders")
        .join("customer", on=("o_custkey", "c_custkey"))
        .select("c_custkey", "o_totalprice")
        .build()
    )
    assert "project[c_custkey,o_totalprice]" in expression.canonical()


def test_q_error_paths():
    with pytest.raises(WarehouseError, match="Q.table"):
        Q().join("orders")
    with pytest.raises(WarehouseError, match="already part"):
        Q.table("orders").join("orders")
    with pytest.raises(WarehouseError, match="no natural join"):
        Q.table("region").join("lineitem").build()
    with pytest.raises(WarehouseError, match="Predicate"):
        Q.table("orders").where("o_totalprice < 5")
    with pytest.raises(WarehouseError, match="aggregate"):
        Q.table("orders").group_by("o_orderstatus").build()


# --------------------------------------------------------------------- config

def test_config_profiles_exist_and_validate():
    assert set(WarehouseConfig.profiles()) == {"paper", "fast", "verify"}
    paper = WarehouseConfig.profile("paper")
    assert paper.greedy and paper.with_pk_indexes and paper.histograms
    verify = WarehouseConfig.profile("verify")
    assert verify.verify_differentials and verify.verify_refresh
    fast = WarehouseConfig.profile("fast")
    assert not fast.include_index_candidates and not fast.feedback


def test_config_profile_overrides_and_near_miss():
    config = WarehouseConfig.profile("paper", update_percentage=0.2)
    assert config.update_percentage == 0.2
    with pytest.raises(WarehouseError, match="did you mean 'paper'"):
        WarehouseConfig.profile("papr")
    with pytest.raises(WarehouseError, match="config field"):
        WarehouseConfig.profile("paper", update_pct=0.2)


def test_config_validation():
    with pytest.raises(WarehouseError, match="buffer_pages"):
        WarehouseConfig(buffer_pages=0)
    with pytest.raises(WarehouseError, match="update_percentage"):
        WarehouseConfig(update_percentage=-0.1)
    with pytest.raises(WarehouseError, match="vectorized"):
        WarehouseConfig(verify_differentials=True, use_physical=False)


# ----------------------------------------------------------- façade ≡ direct

@pytest.fixture(scope="module")
def catalog_01():
    return tpcd.tpcd_catalog(scale_factor=0.1)


def test_facade_costs_match_direct_wiring_fig3(catalog_01):
    views = queries.standalone_agg_view()
    spec = UpdateSpec.uniform(0.05)
    direct = ViewMaintenanceOptimizer(catalog_01)
    wh = Warehouse().load(catalog=catalog_01).define_views(views)
    assert wh.optimize(spec, greedy=False).total_cost == direct.no_greedy(views, spec).total_cost
    assert wh.optimize(spec, greedy=True).total_cost == direct.optimize(views, spec).total_cost


def test_facade_costs_match_direct_wiring_fig5(catalog_01):
    views = queries.large_view_set()
    spec = UpdateSpec.uniform(0.10)
    direct = ViewMaintenanceOptimizer(catalog_01)
    wh = Warehouse().load(catalog=catalog_01).define_views(q_large_view_set())
    assert wh.optimize(spec, greedy=False).total_cost == direct.no_greedy(views, spec).total_cost
    assert wh.optimize(spec, greedy=True).total_cost == direct.optimize(views, spec).total_cost


# ------------------------------------------------------------------ round trip

def _quickstart_warehouse():
    wh = Warehouse(WarehouseConfig.profile("verify")).load(scale=0.1)
    wh.define_view("v_revenue_by_nation", q_standalone_agg())
    return wh


def test_round_trip_fig3_define_optimize_apply_explain():
    wh = _quickstart_warehouse()
    result = wh.optimize()
    assert result.total_cost > 0
    wh.load_data(
        scale=0.001, seed=7,
        tables=["region", "nation", "supplier", "customer", "orders", "lineitem"],
    )
    report = wh.apply(0.05)
    assert isinstance(report, WarehouseRefreshReport)
    assert report.total_changes() > 0
    assert report.verification and report.verified
    assert wh.verify() == {"v_revenue_by_nation": True}
    explained = wh.explain("v_revenue_by_nation")
    assert "strategy:" in explained and "plan:" in explained


def test_round_trip_fig5_define_optimize_apply_explain():
    wh = Warehouse(WarehouseConfig.profile("verify", update_percentage=0.10))
    wh.load(scale=0.1).define_views(q_large_view_set())
    result = wh.optimize()
    assert {d.view for d in result.plan.decisions} == set(q_large_view_set())
    wh.load_data(scale=0.0004, seed=11)
    report = wh.apply()
    assert report.verified
    assert set(report.verification) == set(wh.views)
    # A second batch reuses the already-materialized views.
    second = wh.apply(0.05)
    assert second.verified
    explained = wh.explain("v02_order_nations")
    assert "view: v02_order_nations" in explained


def test_explain_output_is_stable_for_quickstart_view():
    first = _quickstart_warehouse()
    first.optimize()
    second = _quickstart_warehouse()
    second.optimize()
    rendering = first.explain("v_revenue_by_nation")
    assert rendering == second.explain("v_revenue_by_nation")
    lines = rendering.splitlines()
    assert lines[0] == "view: v_revenue_by_nation"
    assert lines[1].startswith("definition: aggregate[n_name;")
    assert lines[2].startswith("strategy: incremental (recompute ")
    assert "plan:" in lines
    plan_ops = [l.strip().split(" ")[0] for l in lines[lines.index("plan:") + 1:] if "cost=" in l]
    assert plan_ops[0].startswith("γ[n_name")
    assert plan_ops.count("scan(lineitem)") == 1
    assert "cardinalities (estimated -> actual):" in lines


def test_explain_runs_optimize_lazily():
    wh = Warehouse().load(scale=0.05)
    wh.define_view("v", Q.table("orders").join("customer"))
    explained = wh.explain("v")
    assert wh.last_optimization is not None
    assert "view: v" in explained


# ------------------------------------------------------------------ friendly errors

def test_define_view_unknown_relation_names_near_miss():
    wh = Warehouse().load(scale=0.05)
    with pytest.raises(WarehouseError, match="did you mean 'lineitem'"):
        wh.define_view("v", Q.table("lineitm").join("orders", on=("l_orderkey", "o_orderkey")))


def test_explain_unknown_view_names_near_miss():
    wh = Warehouse().load(scale=0.05)
    wh.define_view("v_revenue", Q.table("orders").join("customer"))
    with pytest.raises(WarehouseError, match="did you mean 'v_revenue'"):
        wh.explain("v_revenu")


def test_optimize_and_apply_without_prerequisites():
    wh = Warehouse()
    with pytest.raises(WarehouseError, match="load\\(\\) first"):
        wh.optimize()
    wh.load(scale=0.05)
    with pytest.raises(WarehouseError, match="define_view"):
        wh.optimize()
    wh.define_view("v", Q.table("orders").join("customer"))
    with pytest.raises(WarehouseError, match="load_data"):
        wh.apply(0.05)


def test_apply_rejects_bad_batch_type(tiny_tpcd_database):
    wh = Warehouse().load_data(database=tiny_tpcd_database.copy())
    wh.define_view("v", Q.table("orders").join("customer"))
    with pytest.raises(WarehouseError, match="DeltaStore"):
        wh.apply("five percent")


def test_report_is_not_vacuously_verified(tiny_tpcd_database):
    # Default profile: no verification runs, so the report must not claim it.
    wh = Warehouse().load_data(database=tiny_tpcd_database.copy())
    wh.define_view("v", Q.table("orders").join("customer"))
    report = wh.apply(0.05)
    assert report.verification == {}
    assert not report.verified


def test_repeated_apply_never_reissues_primary_keys(tiny_tpcd_database):
    from repro.maintenance.update_spec import RelationUpdate, UpdateSpec

    wh = Warehouse().load_data(database=tiny_tpcd_database.copy())
    wh.define_view("v", Q.table("orders").join("customer"))
    # A delete-heavy batch shrinks the tables below the key high-water mark;
    # the next generated batch must continue the sequences, not restart them
    # at len(table) and re-issue keys of rows that still exist.
    wh.apply(UpdateSpec({
        "orders": RelationUpdate(insert_fraction=0.05, delete_fraction=0.30),
        "customer": RelationUpdate(insert_fraction=0.05, delete_fraction=0.30),
    }))
    wh.apply(0.10)
    for table in ("orders", "customer"):
        keys = [row[0] for row in wh.database.table(table).rows]
        assert len(keys) == len(set(keys)), f"duplicate primary keys in {table}"
    assert wh.verify() == {"v": True}


def test_lazy_optimize_uses_the_delta_store_actual_fractions(tiny_tpcd_database):
    from repro.workloads.updategen import uniform_deltas

    wh = Warehouse().load_data(database=tiny_tpcd_database.copy())
    wh.define_view("v", Q.table("orders").join("customer"))
    deltas = uniform_deltas(wh.database, 0.40, relations=["customer", "orders"])
    spec = wh._spec_of([deltas])
    assert spec.for_relation("orders").insert_fraction == pytest.approx(0.40, rel=0.1)
    assert spec.for_relation("orders").delete_fraction == pytest.approx(0.20, rel=0.1)
    # And the lazy optimize inside apply() prices exactly that spec: at a
    # 40% batch, recomputation wins over incremental maintenance.
    report = wh.apply(deltas)
    assert wh.last_optimization is not None
    assert report.recomputed_views == ["v"] or report.total_changes() > 0
    assert wh.verify() == {"v": True}


def test_refresher_rejects_contradictory_executor_injection(tiny_tpcd_database):
    from repro.engine.physical import PhysicalExecutor
    from repro.maintenance.maintainer import ViewRefresher

    database = tiny_tpcd_database.copy()
    with pytest.raises(ValueError, match="use_physical"):
        ViewRefresher(
            database,
            {"v": Q.table("orders").join("customer").build()},
            use_physical=False,
            physical_executor=PhysicalExecutor(database),
        )


# ------------------------------------------------------------- transactionality

def test_apply_rolls_back_on_mid_refresh_failure(tiny_tpcd_database):
    wh = Warehouse().load_data(database=tiny_tpcd_database.copy())
    wh.define_view("v_co", Q.table("orders").join("customer"))
    wh.apply(0.05)
    database = wh.database
    before_orders = len(database.table("orders"))
    before_view = database.view("v_co").copy()

    # A delta whose schema cannot match "orders" blows up mid-refresh.
    bad = DeltaStore(["orders"])
    bad.set_delta(
        Delta(
            "orders",
            inserts=Relation(database.table("nation").schema, [(999, "NOWHERE", 0)]),
            deletes=Relation(database.table("nation").schema, []),
        )
    )
    with pytest.raises(Exception):
        wh.apply(bad)
    rolled_back = wh.database
    assert len(rolled_back.table("orders")) == before_orders
    assert rolled_back.view("v_co").same_bag(before_view)
    # Planning must follow the restored database (load_data-without-load
    # binds planning to the runtime catalog): pricing after the rollback
    # must not see statistics from the discarded batch.
    assert wh.catalog is rolled_back.catalog
    assert wh.catalog.stats("orders").cardinality == before_orders
    # The session stays usable after the rollback.
    report = wh.apply(0.05)
    assert report.total_changes() >= 0


def test_apply_unknown_relation_in_batch(tiny_tpcd_database):
    wh = Warehouse().load_data(database=tiny_tpcd_database.copy())
    wh.define_view("v", Q.table("orders").join("customer"))
    store = DeltaStore(["part"])
    schema = tpcd.tpcd_tables()["part"].schema
    store.set_delta(Delta("part", Relation(schema, [(1, "p", "b", "t", 1, 1.0)]), Relation(schema, [])))
    with pytest.raises(WarehouseError, match="unknown relation 'part'"):
        wh.apply(store)


# ----------------------------------------------------------------------- MQO

def test_optimize_queries_matches_direct_mqo(catalog_01):
    from repro.mqo.greedy import MultiQueryOptimizer

    wh = Warehouse().load(catalog=catalog_01)
    result = wh.optimize_queries(
        {
            "Q1": Q.table("orders").join("customer").join("lineitem"),
            "Q2": Q.table("customer").join("nation").join("orders"),
        }
    )
    direct = MultiQueryOptimizer(catalog_01).optimize(queries.example_3_1_queries())
    assert result.unshared_cost == direct.unshared_cost
    assert result.optimized_cost == direct.optimized_cost


# -------------------------------------------------------------------- harness

def test_experiment_config_goes_through_warehouse():
    from repro.bench.harness import ExperimentConfig, run_figure_sweep

    config = ExperimentConfig(catalog=tpcd.tpcd_catalog(scale_factor=0.05))
    warehouse = config.warehouse()
    assert isinstance(warehouse, Warehouse)
    assert config.optimizer() is not None  # deprecated shim still works

    series = run_figure_sweep(
        "mini", "façade sweep", queries.standalone_join_view(), config, (0.05,)
    )
    direct = ViewMaintenanceOptimizer(
        config.catalog, cost_model=config.cost_model()
    )
    spec = UpdateSpec.uniform(0.05)
    assert series.points[0].no_greedy_cost == direct.no_greedy(
        queries.standalone_join_view(), spec
    ).total_cost
    assert series.points[0].greedy_cost == direct.optimize(
        queries.standalone_join_view(), spec
    ).total_cost


# ------------------------------------------------------------------ public surface

def test_public_surface_is_exported():
    import repro

    for name in (
        "Warehouse",
        "WarehouseConfig",
        "WarehouseError",
        "WarehouseRefreshReport",
        "Q",
        "UpdateSpec",
        "RefreshReport",
        "OptimizationResult",
    ):
        assert name in repro.__all__
        assert hasattr(repro, name)
