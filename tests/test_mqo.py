"""Tests for multi-query optimization (sharing detection + RSSB00 greedy)."""

import pytest

from repro.mqo.greedy import MultiQueryOptimizer
from repro.mqo.sharing import nodes_per_query, sharable_candidates, shared_nodes, sharing_report
from repro.optimizer.dag_builder import build_dag
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def catalog():
    return tpcd.tpcd_catalog(scale_factor=0.1)


@pytest.fixture(scope="module")
def two_query_dag(catalog):
    return build_dag(
        {
            "Q1": queries.chain_join(["lineitem", "orders", "customer"]),
            "Q2": queries.chain_join(["lineitem", "orders", "customer", "nation"]),
        },
        catalog,
    )


def test_nodes_per_query_covers_roots(two_query_dag):
    per_query = nodes_per_query(two_query_dag)
    assert set(per_query) == {"Q1", "Q2"}
    assert two_query_dag.roots["Q1"].id in per_query["Q1"]
    # Q1's root is a sub-expression of Q2, hence also reachable from Q2.
    assert two_query_dag.roots["Q1"].id in per_query["Q2"]


def test_shared_nodes_exclude_base_relations(two_query_dag):
    shared = shared_nodes(two_query_dag)
    assert shared, "the two queries share join sub-expressions"
    assert all(not node.is_base_relation for node in shared)


def test_sharable_candidates_exclude_roots(two_query_dag):
    roots = {node.id for node in two_query_dag.roots.values()}
    # Q1's root is shared with Q2 but is itself a root, so it is excluded.
    candidates = {node.id for node in sharable_candidates(two_query_dag)}
    assert two_query_dag.roots["Q2"].id not in candidates
    assert candidates, "non-root shared candidates must remain"


def test_sharing_report_names_queries(two_query_dag):
    report = sharing_report(two_query_dag)
    assert any(set(queries_) == {"Q1", "Q2"} for queries_ in report.values())


def test_example_3_1_finds_global_sharing(catalog):
    """Example 3.1: the globally optimal plans share R ⋈ S across the queries."""
    optimizer = MultiQueryOptimizer(catalog)
    result = optimizer.optimize(queries.example_3_1_queries())
    assert result.optimized_cost <= result.unshared_cost + 1e-9
    assert result.query_costs and set(result.query_costs) == {"Q1", "Q2"}
    assert result.plans["Q1"].count_nodes() >= 3


def test_mqo_never_hurts_on_unrelated_queries(catalog):
    optimizer = MultiQueryOptimizer(catalog)
    result = optimizer.optimize(
        {
            "Qa": queries.chain_join(["supplier", "nation", "region"]),
            "Qb": queries.chain_join(["orders", "customer"]),
        }
    )
    assert result.optimized_cost <= result.unshared_cost + 1e-9


def test_monotonicity_and_basic_loops_agree(catalog):
    workload = {
        "Q1": queries.chain_join(["lineitem", "orders", "customer"]),
        "Q2": queries.chain_join(["lineitem", "orders", "customer", "nation"]),
        "Q3": queries.chain_join(["orders", "customer", "nation"]),
    }
    lazy = MultiQueryOptimizer(catalog, use_monotonicity=True).optimize(workload)
    eager = MultiQueryOptimizer(catalog, use_monotonicity=False).optimize(workload)
    # The monotonicity optimization is a heuristic but on this workload both
    # loops should find configurations of very similar quality.
    assert lazy.optimized_cost == pytest.approx(eager.optimized_cost, rel=0.05)


def test_disabling_sharability_pruning_does_not_worsen_result(catalog):
    workload = {
        "Q1": queries.chain_join(["lineitem", "orders", "customer"]),
        "Q2": queries.chain_join(["lineitem", "orders", "customer", "nation"]),
    }
    pruned = MultiQueryOptimizer(catalog, apply_sharability_pruning=True).optimize(workload)
    unpruned = MultiQueryOptimizer(catalog, apply_sharability_pruning=False).optimize(workload)
    assert unpruned.optimized_cost <= pruned.optimized_cost * 1.001


def test_improvement_ratio_property(catalog):
    optimizer = MultiQueryOptimizer(catalog)
    result = optimizer.optimize(queries.example_3_1_queries())
    assert 0.0 <= result.improvement_ratio < 1.0


def test_execute_with_temporaries_cleans_up_on_failure():
    """A failing temporary materialization must not leak earlier temporaries."""
    import pytest as _pytest

    from repro.algebra.expressions import BaseRelation, Project
    from repro.engine.database import Database, DatabaseError
    from repro.catalog.schema import Schema, TableDef
    from repro.mqo.sharing import execute_with_temporaries
    from repro.optimizer.plans import PlanNode, reuse_plan
    from repro.catalog.statistics import TableStats

    database = Database()
    database.create_table(TableDef("sales", Schema.from_names(["sale_id", "amount"]), ()), [(1, 10)])
    stats = TableStats(1.0, 8, {})
    good = Project(BaseRelation("sales"), ["sale_id"])
    bad = Project(BaseRelation("zz_missing"), ["a", "b", "c", "d"])
    assert len(good.canonical()) < len(bad.canonical())  # good materializes first
    plan = PlanNode(
        description="root",
        node_id=0,
        cost=1.0,
        cardinality=1.0,
        children=[
            reuse_plan(1, "t_good", 0.1, stats, expression=good),
            reuse_plan(2, "t_bad", 0.1, stats, expression=bad),
        ],
        expression=good,
    )
    with _pytest.raises(DatabaseError):
        execute_with_temporaries(database, {}, {"q": plan})
    # The successfully materialized temporary was rolled back.
    assert database.view_names() == []


def test_stale_auto_labelled_view_is_not_trusted():
    """A leftover view named like a DAG label ("e14") must not be read as
    this batch's shared result; the expression is recomputed fresh."""
    from repro.algebra.expressions import BaseRelation, Project
    from repro.engine.database import Database
    from repro.engine.executor import evaluate
    from repro.catalog.schema import Schema, TableDef
    from repro.catalog.statistics import TableStats
    from repro.mqo.sharing import execute_with_temporaries
    from repro.optimizer.plans import PlanNode, reuse_plan
    from repro.storage.relation import Relation

    database = Database()
    database.create_table(
        TableDef("sales", Schema.from_names(["sale_id", "amount"]), ()), [(1, 10), (2, 20)]
    )
    shared = Project(BaseRelation("sales"), ["sale_id"])
    # Poison: a stale relation under the DAG-scoped label, with wrong contents.
    database.materialize_view("e14", Relation(Schema.from_names(["sale_id"]), [(999,)]))

    stats = TableStats(2.0, 8, {})
    plan = reuse_plan(14, "e14", 0.1, stats, expression=shared)
    results = execute_with_temporaries(database, {"q": shared}, {"q": plan})
    assert results["q"].same_bag(evaluate(shared, database))
    # The poison view is untouched; the fresh temporary was dropped.
    assert database.view_names() == ["e14"]
    assert database.view("e14").rows == [(999,)]
