"""Tests for multi-query optimization (sharing detection + RSSB00 greedy)."""

import pytest

from repro.mqo.greedy import MultiQueryOptimizer
from repro.mqo.sharing import nodes_per_query, sharable_candidates, shared_nodes, sharing_report
from repro.optimizer.dag_builder import build_dag
from repro.workloads import queries, tpcd


@pytest.fixture(scope="module")
def catalog():
    return tpcd.tpcd_catalog(scale_factor=0.1)


@pytest.fixture(scope="module")
def two_query_dag(catalog):
    return build_dag(
        {
            "Q1": queries.chain_join(["lineitem", "orders", "customer"]),
            "Q2": queries.chain_join(["lineitem", "orders", "customer", "nation"]),
        },
        catalog,
    )


def test_nodes_per_query_covers_roots(two_query_dag):
    per_query = nodes_per_query(two_query_dag)
    assert set(per_query) == {"Q1", "Q2"}
    assert two_query_dag.roots["Q1"].id in per_query["Q1"]
    # Q1's root is a sub-expression of Q2, hence also reachable from Q2.
    assert two_query_dag.roots["Q1"].id in per_query["Q2"]


def test_shared_nodes_exclude_base_relations(two_query_dag):
    shared = shared_nodes(two_query_dag)
    assert shared, "the two queries share join sub-expressions"
    assert all(not node.is_base_relation for node in shared)


def test_sharable_candidates_exclude_roots(two_query_dag):
    roots = {node.id for node in two_query_dag.roots.values()}
    # Q1's root is shared with Q2 but is itself a root, so it is excluded.
    candidates = {node.id for node in sharable_candidates(two_query_dag)}
    assert two_query_dag.roots["Q2"].id not in candidates
    assert candidates, "non-root shared candidates must remain"


def test_sharing_report_names_queries(two_query_dag):
    report = sharing_report(two_query_dag)
    assert any(set(queries_) == {"Q1", "Q2"} for queries_ in report.values())


def test_example_3_1_finds_global_sharing(catalog):
    """Example 3.1: the globally optimal plans share R ⋈ S across the queries."""
    optimizer = MultiQueryOptimizer(catalog)
    result = optimizer.optimize(queries.example_3_1_queries())
    assert result.optimized_cost <= result.unshared_cost + 1e-9
    assert result.query_costs and set(result.query_costs) == {"Q1", "Q2"}
    assert result.plans["Q1"].count_nodes() >= 3


def test_mqo_never_hurts_on_unrelated_queries(catalog):
    optimizer = MultiQueryOptimizer(catalog)
    result = optimizer.optimize(
        {
            "Qa": queries.chain_join(["supplier", "nation", "region"]),
            "Qb": queries.chain_join(["orders", "customer"]),
        }
    )
    assert result.optimized_cost <= result.unshared_cost + 1e-9


def test_monotonicity_and_basic_loops_agree(catalog):
    workload = {
        "Q1": queries.chain_join(["lineitem", "orders", "customer"]),
        "Q2": queries.chain_join(["lineitem", "orders", "customer", "nation"]),
        "Q3": queries.chain_join(["orders", "customer", "nation"]),
    }
    lazy = MultiQueryOptimizer(catalog, use_monotonicity=True).optimize(workload)
    eager = MultiQueryOptimizer(catalog, use_monotonicity=False).optimize(workload)
    # The monotonicity optimization is a heuristic but on this workload both
    # loops should find configurations of very similar quality.
    assert lazy.optimized_cost == pytest.approx(eager.optimized_cost, rel=0.05)


def test_disabling_sharability_pruning_does_not_worsen_result(catalog):
    workload = {
        "Q1": queries.chain_join(["lineitem", "orders", "customer"]),
        "Q2": queries.chain_join(["lineitem", "orders", "customer", "nation"]),
    }
    pruned = MultiQueryOptimizer(catalog, apply_sharability_pruning=True).optimize(workload)
    unpruned = MultiQueryOptimizer(catalog, apply_sharability_pruning=False).optimize(workload)
    assert unpruned.optimized_cost <= pruned.optimized_cost * 1.001


def test_improvement_ratio_property(catalog):
    optimizer = MultiQueryOptimizer(catalog)
    result = optimizer.optimize(queries.example_3_1_queries())
    assert 0.0 <= result.improvement_ratio < 1.0
